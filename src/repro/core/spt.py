"""Speculative Privacy Tracking (SPT) — the paper's contribution (Sections 6-7).

SPT taints *everything* (all architectural registers and all memory start
tainted) and only untaints data it can prove the attacker can infer from the
non-speculative execution:

* **Declassification** (6.6): a transmitter or branch reaching the visibility
  point non-speculatively leaks its operands; they are untainted.
* **Forward/backward untaint rules** (6.6): applied locally to every window
  entry each cycle; newly untainted registers are broadcast with a limited
  *untaint broadcast width* (7.3), destinations before sources and older
  entries before younger ones, using per-bit broadcast-pending flags.
* **PC-inferable outputs** (6.5): load-immediate results and link registers
  are untainted at rename (the ROB contents are public by Property 1).
* **Store-to-load forwarding** (6.7): untaint propagates across a forwarding
  pair only once the implicit branch is public (``STLPublic``), in both
  directions.
* **Shadow L1 / shadow memory** (6.8, 7.5): byte-granular taint for cached
  data; untainted store data and VP'd loads clear it, loads of untainted
  bytes produce untainted outputs.

Transmitters with tainted address operands and branches with tainted
predicates are delayed (the delayed-execution protection policy) until
untainted or at the VP.
"""

from __future__ import annotations

from typing import Optional

from repro.core.attack_model import AttackModel, vp_obstacle
from repro.core.events import UntaintKind, UntaintStats
from repro.core.shadow_l1 import ShadowMode, ShadowTaint
from repro.core.taint_algebra import (PURE_KINDS, backward_untaints,
                                      forward_untaints_output,
                                      initial_output_taint, leaked_operands)
from repro.isa.opcodes import Kind
from repro.pipeline.dyninst import DynInst
from repro.pipeline.engine_api import ProtectionEngine


class SPTEngine(ProtectionEngine):
    """The full SPT protection engine with configurable mechanisms."""

    protects_speculative_data = True
    protects_nonspeculative_secrets = True

    def __init__(self, model: AttackModel, backward: bool = True,
                 shadow: ShadowMode = ShadowMode.L1, ideal: bool = False):
        super().__init__()
        self.model = model
        self.backward = backward or ideal
        self.shadow_mode = shadow
        self.ideal = ideal
        self.vp_predicate = vp_obstacle(model)
        self.name = self._config_name()
        self.untaint = UntaintStats()
        self.taint: list[bool] = []
        self.shadow: Optional[ShadowTaint] = None
        self.width = 3
        # FIFO of (preg, cause, enqueue_cycle) untaint requests awaiting
        # broadcast; the enqueue cycle feeds the queue-wait histogram.
        self._pending: list[tuple[int, UntaintKind, int]] = []
        self._pending_set: set[int] = set()
        # Cycle each physical register last became tainted, for the
        # taint-to-untaint latency histograms (repro.obs).
        self._taint_since: dict[int, int] = {}

    def _config_name(self) -> str:
        if self.ideal:
            prop = "Ideal"
        elif self.backward:
            prop = "Bwd"
        else:
            prop = "Fwd"
        shadow = {ShadowMode.NONE: "NoShadowL1", ShadowMode.L1: "ShadowL1",
                  ShadowMode.FULL_MEMORY: "ShadowMem"}[self.shadow_mode]
        return f"SPT{{{prop},{shadow}}}"

    def attach(self, core) -> None:
        super().attach(core)
        count = core.params.num_phys_regs
        # All architectural registers start tainted (Section 6.3) except the
        # hardwired zero register, whose value is public by definition.
        self.taint = [True] * count
        self.taint[0] = False
        self._taint_since = {preg: 0 for preg in range(1, count)}
        self.shadow = ShadowTaint(self.shadow_mode,
                                  core.params.hierarchy.l1_params.line_bytes)
        self.width = core.params.untaint_broadcast_width

    # ------------------------------------------------------------- tainting
    def on_rename(self, di: DynInst) -> None:
        di.t_src1 = di.prs1 >= 0 and self.taint[di.prs1]
        di.t_src2 = di.prs2 >= 0 and self.taint[di.prs2]
        tainted = initial_output_taint(di.inst, di.t_src1, di.t_src2)
        # t_dst is kept even for discarded destinations (rd = x0): the
        # backward rules must not treat a never-observable result as public.
        di.t_dst = tainted
        if di.prd >= 0:
            self.taint[di.prd] = tainted
            if tainted:
                self._taint_since[di.prd] = self.core.cycle
            else:
                self._taint_since.pop(di.prd, None)

    # --------------------------------------------------------------- gating
    def may_compute_address(self, di: DynInst) -> bool:
        return not di.t_src1

    def may_resolve(self, di: DynInst) -> bool:
        if di.t_src1:
            return False
        return not (di.inst.info.reads_rs2 and di.t_src2)

    def skip_cache_for_forwarding(self, load: DynInst, store: DynInst) -> bool:
        # Only when the forwarding decision is already public (STLPublic).
        if not load.stl_public and self._stl_public(load, store):
            load.stl_public = True
        return load.stl_public

    # ------------------------------------------------------ untaint requests
    def _request(self, di: Optional[DynInst], slot: str, preg: int,
                 cause: UntaintKind) -> None:
        """Locally untaint an entry bit and queue the register for broadcast."""
        if di is not None:
            if slot == "src1":
                if not di.t_src1:
                    return
                di.t_src1 = False
                di.pend_src1 = True
            elif slot == "src2":
                if not di.t_src2:
                    return
                di.t_src2 = False
                di.pend_src2 = True
            else:
                if not di.t_dst:
                    return
                di.t_dst = False
                di.pend_dst = True
        if preg >= 0 and self.taint[preg] and preg not in self._pending_set:
            self._pending.append((preg, cause, self.core.cycle))
            self._pending_set.add(preg)

    # ------------------------------------------------------------ vp events
    def _declassify(self, di: DynInst) -> None:
        """Non-speculative transmitter/branch leaks its operands (6.6)."""
        if di.declassified:
            return
        di.declassified = True
        cause = (UntaintKind.VP_TRANSMITTER if di.is_transmitter
                 else UntaintKind.VP_BRANCH)
        for slot in leaked_operands(di.inst):
            preg = di.prs1 if slot == "src1" else di.prs2
            self._request(di, slot, preg, cause)

    def on_retire(self, di: DynInst) -> None:
        # Retirement implies non-speculation even if the VP frontier scan has
        # not reached the instruction yet this cycle.
        self._declassify(di)

    def on_squash(self, squashed: list) -> None:
        # Squashed destination registers are about to be recycled by rename;
        # their pending broadcasts must die with them, or a later broadcast
        # would untaint an unrelated new value.
        if not self._pending:
            return
        dead = {di.prd for di in squashed if di.prd >= 0}
        if not dead:
            return
        live = [entry for entry in self._pending if entry[0] not in dead]
        self._pending = live
        self._pending_set = {entry[0] for entry in live}

    # --------------------------------------------------------- memory hooks
    def _shadow_mirror(self, address: int, size: int, tainted: bool) -> None:
        """Write taint into the shadow, honoring L1 residency in L1 mode.

        The fill and the shadow update are decoupled in the pipeline: a
        store's retire-time access can stall on exhausted MSHRs (no fill
        happens), and a load's line can be evicted by a younger access
        between its fill and its data arrival.  In either case there is no
        resident line to mirror — the shadow holds no tags of its own —
        and writing one would break the shadow-residency invariant.  The
        bytes simply keep their conservative default (absent = tainted).
        """
        if self.shadow_mode != ShadowMode.L1:
            self.shadow.set_range(address, size, tainted=tainted)
            return
        line_bytes = self.shadow.line_bytes
        hierarchy = self.core.hierarchy
        while size > 0:
            line = address - address % line_bytes
            span = min(size, line_bytes - (address - line))
            if hierarchy.l1_resident(line):
                self.shadow.set_range(address, span, tainted=tainted)
            address += span
            size -= span

    def on_load_data(self, di: DynInst) -> None:
        if di.forwarded_from is not None:
            # Taint crosses a forwarding pair only via the STLPublic rules.
            return
        if not di.t_dst:
            # Lemma 1: the load reached the VP while waiting for data; its
            # access is public, so the read bytes become public (rule 6.8-2).
            self._shadow_mirror(di.address, di.inst.info.mem_size,
                                tainted=False)
            self.shadow.loads_cleared += 1
            return
        if not self.shadow.range_tainted(di.address, di.inst.info.mem_size):
            cause = (UntaintKind.SHADOW_MEM
                     if self.shadow_mode == ShadowMode.FULL_MEMORY
                     else UntaintKind.SHADOW_L1)
            self._request(di, "dst", di.prd, cause)

    def on_store_retire(self, di: DynInst) -> None:
        # Rule 6.8-1: the store data's taint overwrites the written bytes.
        self._shadow_mirror(di.address, di.inst.info.mem_size,
                            tainted=di.t_src2)
        if not di.t_src2:
            self.shadow.stores_cleared += 1

    def on_l1_evict(self, line: int) -> None:
        self.shadow.invalidate_line(line)

    # ------------------------------------------------------------------ tick
    def tick(self) -> None:
        newly_vp = self.core.advance_vp(self.vp_predicate)
        for di in newly_vp:
            if di.is_transmitter or di.kind in (Kind.BRANCH, Kind.JUMP_REG):
                self._declassify(di)
        if self.ideal:
            self._tick_ideal()
        else:
            self._stl_rules()
            self._local_rules()
            self._broadcast(limit=self.width)

    def _tick_ideal(self) -> None:
        """Single-cycle fixpoint untainting (SPT {Ideal, ShadowMem})."""
        untainted_this_cycle = 0
        while True:
            self._stl_rules()
            self._local_rules()
            progressed = self._broadcast(limit=None)
            untainted_this_cycle += progressed
            if not progressed:
                break
        self.untaint.record_cycle_width(untainted_this_cycle)

    # ---------------------------------------------------------------- rules
    def _local_rules(self) -> None:
        """Phase 1 (7.3): apply forward/backward rules locally per entry."""
        backward = self.backward
        for di in self.core.in_flight():
            if di.squashed or di.kind not in PURE_KINDS:
                continue
            if di.t_dst and forward_untaints_output(di.inst, di.t_src1,
                                                    di.t_src2):
                self._request(di, "dst", di.prd, UntaintKind.FORWARD)
            if not backward:
                continue
            slot = backward_untaints(di.inst, di.t_dst, di.t_src1, di.t_src2)
            if slot == "src1":
                self._request(di, "src1", di.prs1, UntaintKind.BACKWARD)
            elif slot == "src2":
                self._request(di, "src2", di.prs2, UntaintKind.BACKWARD)

    def _stl_rules(self) -> None:
        """Store-to-load forwarding untaint, gated by STLPublic (6.7)."""
        for load in self.core.lsq:
            if not load.is_load or load.squashed or load.fwding_st < 0:
                continue
            store = load.forwarded_from
            if not load.stl_public:
                if not self._stl_public(load, store):
                    continue
                load.stl_public = True
            if not store.t_src2 and load.t_dst:
                self._request(load, "dst", load.prd, UntaintKind.STL_FORWARD)
            elif self.backward and not load.t_dst and store.t_src2:
                target = store if not store.retired else None
                self._request(target, "src2", store.prs2,
                              UntaintKind.STL_BACKWARD)
                store.t_src2 = False

    def _stl_public(self, load: DynInst, store: DynInst) -> bool:
        """STLPublic(S, L): forwarding decision inferable by the attacker."""
        if load.t_src1:
            return False
        pending = 0
        for st in self.core.lsq:
            if st.seq >= load.seq:
                break
            if (st.is_store and not st.squashed and st.seq >= store.seq
                    and st.t_src1):
                pending += 1
        load.num_st_untaint_pending = pending
        return pending == 0 and not store.t_src1

    # -------------------------------------------------------------- broadcast
    def _broadcast(self, limit: Optional[int]) -> int:
        """Phase 2 (7.3): publish up to ``limit`` untainted register IDs."""
        if not self._pending:
            if limit is not None:
                self.untaint.record_cycle_width(0)
            return 0
        if limit is None:
            selected = self._pending
            self._pending = []
        else:
            selected = self._pending[:limit]
            self._pending = self._pending[limit:]
            if self._pending:
                self.untaint.broadcast_stall_cycles += 1
        self._pending_set = {entry[0] for entry in self._pending}
        transitions = 0
        now = self.core.cycle
        for preg, cause, enqueued in selected:
            self.untaint.record_queue_wait(now - enqueued)
            if self.taint[preg]:
                self.taint[preg] = False
                self.untaint.count(cause)
                transitions += 1
                since = self._taint_since.pop(preg, None)
                if since is not None:
                    self.untaint.record_latency(cause, now - since)
            self._clear_entry_bits(preg)
        self.untaint.broadcasts += len(selected)
        if limit is not None:
            self.untaint.record_cycle_width(transitions)
        return transitions

    def _clear_entry_bits(self, preg: int) -> None:
        for di in self.core.in_flight():
            if di.prs1 == preg:
                di.t_src1 = False
                di.pend_src1 = False
            if di.prs2 == preg:
                di.t_src2 = False
                di.pend_src2 = False
            if di.prd == preg:
                di.t_dst = False
                di.pend_dst = False

    # ------------------------------------------------------------ reporting
    def untaint_pending(self, preg: int) -> bool:
        # The stall accountant asks: is this register's untaint already
        # decided but stuck behind the broadcast width?
        return preg in self._pending_set

    def metrics_tree(self):
        """Fold the untaint machinery's state into the metrics hierarchy.

        Idempotent (``set``/``set_dist`` only): the accumulating state
        lives in :class:`UntaintStats` and the shadow structure.
        """
        m = self.metrics
        untaint = m.child("untaint")
        for kind, count in self.untaint.by_kind.items():
            untaint.set(kind.value, count)
        untaint.set("total", self.untaint.total)
        if self.untaint.untaints_per_cycle:
            untaint.set_dist("untaints_per_cycle",
                             self.untaint.untaints_per_cycle)
        # Taint-lifecycle histograms (log2 buckets, see events.log2_bucket).
        for kind, hist in self.untaint.latency_by_kind.items():
            untaint.set_dist(f"latency-{kind.value}", hist)
        broadcast = m.child("broadcast")
        broadcast.set("broadcasts", self.untaint.broadcasts)
        broadcast.set("stall_cycles", self.untaint.broadcast_stall_cycles)
        broadcast.set("queue_depth", len(self._pending))
        if self.untaint.queue_wait:
            broadcast.set_dist("queue_wait", self.untaint.queue_wait)
        if self.shadow is not None:
            shadow = m.child("shadow")
            shadow.set("stores_cleared", self.shadow.stores_cleared)
            shadow.set("loads_cleared", self.shadow.loads_cleared)
            # Occupancy at snapshot time: how much memory state the shadow
            # currently tracks, and how much of it is *untainted* resident
            # data — the adversarial fuzzer's proxy for how deeply a victim
            # exercised the shadow-L1 declassification path.
            shadow.set("tracked_lines", len(self.shadow.lines()))
            shadow.set("resident_untainted_bytes",
                       self.shadow.resident_untainted_bytes())
        return m

    @property
    def stats_summary(self) -> dict:
        summary = dict(self.metrics.scalars)
        summary.update(self.untaint.as_dict())
        summary["untaint_total"] = self.untaint.total
        summary["broadcasts"] = self.untaint.broadcasts
        summary["broadcast_stall_cycles"] = self.untaint.broadcast_stall_cycles
        if self.shadow is not None:
            summary["shadow_stores_cleared"] = self.shadow.stores_cleared
            summary["shadow_loads_cleared"] = self.shadow.loads_cleared
        return summary
