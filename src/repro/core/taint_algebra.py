"""Word-level untaint algebra: the Section 6.6 rules as pure functions.

These are the instruction-granularity counterparts of the bit-level rules in
:mod:`repro.core.gates`.  The SPT engine applies them to every in-flight
reservation-station entry each cycle; they are kept here as standalone
functions so the rules can be tested (and reasoned about) independently of
the pipeline.

Rules (paper Section 6.6):

* **Forward (output) untainting** — conservative: an instruction whose
  output is a pure function of its register operands produces an untainted
  output iff every operand is untainted.  Loads are excluded (their output
  also depends on memory).
* **Backward (input) untainting** — for register MOV: an untainted output
  implies the operand is inferable.  For *invertible* operations (ADD, SUB,
  XOR and their immediate/rotate forms): an untainted output plus all-but-one
  untainted inputs imply the remaining input.
* **PC-inferable outputs** (Section 6.5) — load-immediate results and
  link-register writes are functions of the ROB contents alone, which are
  public by Property 1, so they are never tainted.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Kind

# Instruction kinds whose results are pure functions of register operands.
PURE_KINDS = (Kind.ALU, Kind.ALU_IMM, Kind.MOVE)

# Kinds whose outputs are determined by the (public) ROB contents alone.
PC_INFERABLE_KINDS = (Kind.LOAD_IMM, Kind.JUMP, Kind.JUMP_REG)


def initial_output_taint(inst: Instruction, src1_tainted: bool,
                         src2_tainted: bool) -> bool:
    """Taint of a newly renamed instruction's output (Section 6.3)."""
    kind = inst.info.kind
    if kind == Kind.LOAD:
        return True                      # memory taint unknown at rename
    if kind in PC_INFERABLE_KINDS:
        return False                     # Section 6.5
    return src1_tainted or src2_tainted


def forward_untaints_output(inst: Instruction, src1_tainted: bool,
                            src2_tainted: bool) -> bool:
    """Forward rule: may a tainted output become untainted now?"""
    info = inst.info
    if info.kind not in PURE_KINDS:
        return False
    if src1_tainted:
        return False
    return not (info.reads_rs2 and src2_tainted)


def backward_untaints(inst: Instruction, dst_tainted: bool,
                      src1_tainted: bool,
                      src2_tainted: bool) -> Optional[str]:
    """Backward rule: which source (if any) becomes inferable?

    Returns ``"src1"``, ``"src2"`` or None.  Requires the output to be
    untainted (the attacker knows it) and, for two-operand invertible
    operations, exactly one source still tainted.
    """
    info = inst.info
    if dst_tainted or not info.invertible:
        return None
    if info.kind == Kind.MOVE or info.kind == Kind.ALU_IMM:
        return "src1" if src1_tainted else None
    if info.kind == Kind.ALU:
        if src1_tainted and not src2_tainted:
            return "src1"
        if src2_tainted and not src1_tainted:
            return "src2"
    return None


def leaked_operands(inst: Instruction) -> tuple:
    """Operand slots a transmitter/branch leaks when it executes.

    Loads and stores leak their address base (``rs1``); conditional branches
    leak both comparison operands; indirect jumps leak the target register.
    These are the operands SPT declassifies when the instruction reaches the
    visibility point (Section 6.6).
    """
    kind = inst.info.kind
    if kind in (Kind.LOAD, Kind.STORE):
        return ("src1",)
    if kind == Kind.BRANCH:
        return ("src1", "src2")
    if kind == Kind.JUMP_REG:
        return ("src1",)
    return ()
