"""Untaint-event taxonomy and counters (for Figure 8 / Figure 9)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class UntaintKind(enum.Enum):
    """Why a register became untainted.

    The kinds are exclusive, matching the breakdown of Figure 8: each
    register-untaint event is attributed to exactly one mechanism.
    """

    VP_TRANSMITTER = "vp-transmitter"   # operand declassified at transmitter VP
    VP_BRANCH = "vp-branch"             # operand declassified at branch VP
    FORWARD = "forward"                 # Section 6.6 forward rule
    BACKWARD = "backward"               # Section 6.6 backward rule
    LOAD_IMMEDIATE = "load-immediate"   # Section 6.5 (PC-inferable outputs)
    SHADOW_L1 = "shadow-l1"             # load read untainted L1D bytes (6.8)
    SHADOW_MEM = "shadow-mem"           # same, full-memory shadow variant
    STL_FORWARD = "stl-forward"         # store-to-load forwarding fwd rule (6.7)
    STL_BACKWARD = "stl-backward"       # store-to-load forwarding bwd rule (6.7)


def log2_bucket(value: int) -> int:
    """Power-of-two histogram bucket: bucket ``k`` covers ``[2^(k-1), 2^k)``
    (bucket 0 is exactly zero).  Bounds histogram size for latencies that
    span five orders of magnitude."""
    return value.bit_length()


@dataclass
class UntaintStats:
    """Per-run untaint accounting."""

    by_kind: dict = field(default_factory=dict)
    # Histogram for Figure 9: untainting cycles by number of registers
    # untainted that cycle (ideal propagation only).
    untaints_per_cycle: dict = field(default_factory=dict)
    # Taint-lifecycle histograms (log2 buckets): taint-to-untaint latency
    # per untaint rule, and time spent queued behind the broadcast width.
    latency_by_kind: dict = field(default_factory=dict)
    queue_wait: dict = field(default_factory=dict)
    broadcasts: int = 0
    broadcast_stall_cycles: int = 0     # cycles where pending > width

    def count(self, kind: UntaintKind, amount: int = 1) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + amount

    def record_cycle_width(self, registers_untainted: int) -> None:
        if registers_untainted > 0:
            bucket = self.untaints_per_cycle
            bucket[registers_untainted] = bucket.get(registers_untainted, 0) + 1

    def record_latency(self, kind: UntaintKind, cycles: int) -> None:
        """Taint-to-untaint latency of one register, attributed to the rule
        that finally untainted it."""
        hist = self.latency_by_kind.setdefault(kind, {})
        bucket = log2_bucket(cycles)
        hist[bucket] = hist.get(bucket, 0) + 1

    def record_queue_wait(self, cycles: int) -> None:
        """Cycles one untaint request waited in the broadcast queue."""
        bucket = log2_bucket(cycles)
        self.queue_wait[bucket] = self.queue_wait.get(bucket, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.by_kind.values())

    def as_dict(self) -> dict:
        return {kind.value: count for kind, count in sorted(
            self.by_kind.items(), key=lambda item: item[0].value)}
