"""repro.fastpath: the vector execution backend (``backend="vector"``).

A struct-of-arrays fast path over the reference out-of-order model —
packed-bitmask SPT rule evaluation, decode-time metadata tables, and
quiescent-cycle fast-forwarding — verified bit-identical against the
reference backend by the differential suite in ``tests/fastpath`` and by
the ``repro backend-diff`` command.

Importing this package requires numpy; the lazy imports in
:func:`repro.harness.runner.build_core` keep the reference backend free
of the dependency.
"""

from repro.fastpath.deps import have_numpy, require_numpy
from repro.fastpath.spt_vector import VectorSPTEngine, vectorize_engine
from repro.fastpath.vector_core import VectorCore

__all__ = ["VectorCore", "VectorSPTEngine", "vectorize_engine",
           "have_numpy", "require_numpy"]
