"""``repro backend-diff`` — pin the vector backend against the reference.

Runs every (workload, configuration, attack model) cell of a grid under
both backends and demands *bit-identical* outcomes: cycle counts, the
retired-PC stream, architectural register file, flat stats, the full
metrics tree, and the per-channel digests of the attacker-visible trace.
A wedged simulation must wedge identically under both backends (same
exception, same message, same cycle).

This is the acceptance harness for ``backend="vector"``: unlike the
lockstep sanitizer (which checks the vector backend against the golden
interpreter cycle by cycle), this compares the two backends against each
other end-to-end with fast-forwarding *enabled*, so the quiescent-cycle
batching itself is under test.

Examples::

    python -m repro.cli backend-diff --smoke
    python -m repro.cli backend-diff                  # full Figure 7 grid
    python -m repro.cli backend-diff --workloads mcf --budget 20000
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.check.cli import _parse_configs, _parse_workloads
from repro.core.attack_model import AttackModel
from repro.harness.configs import FIGURE7_ORDER, make_engine
from repro.harness.runner import build_core
from repro.pipeline.core import SimulationError
from repro.pipeline.params import MachineParams
from repro.security.observer import channel_digests, differing_channels
from repro.workloads.registry import WORKLOADS, get as get_workload

BOTH_MODELS = (AttackModel.SPECTRE, AttackModel.FUTURISTIC)

SMOKE_WORKLOADS = ("mcf", "chacha20")
SMOKE_CONFIGS = ("UnsafeBaseline", "SecureBaseline", "STT",
                 "SPT{Bwd,ShadowL1}")
SMOKE_BUDGET = 3000
FULL_BUDGET = 2000


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="run_spt backend-diff",
        description="Run a grid under both backends and require "
                    "bit-identical results.")
    parser.add_argument("--smoke", action="store_true",
                        help=f"small CI grid: {len(SMOKE_WORKLOADS)} "
                             f"workloads x {len(SMOKE_CONFIGS)} configs x "
                             f"both models, budget {SMOKE_BUDGET}")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names "
                             "(default: all, or the smoke set)")
    parser.add_argument("--configs", default=None,
                        help="comma-separated Table 2 configuration names "
                             "(default: the Figure 7 set, or the smoke set)")
    parser.add_argument("--models", default="both",
                        choices=["spectre", "futuristic", "both"])
    parser.add_argument("--budget", type=int, default=None,
                        help="per-run retired-instruction budget "
                             f"(default {FULL_BUDGET}, smoke {SMOKE_BUDGET})")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor")
    return parser


def run_backend(workload: str, config: str, model: AttackModel,
                scale: int, budget: int, backend: str) -> dict:
    """One cell under one backend, reduced to its comparable outcome."""
    program = get_workload(workload).program(scale)
    engine = make_engine(config, model)
    params = MachineParams(backend=backend)
    core = build_core(program, engine=engine, params=params,
                      record_retired_pcs=True)
    try:
        sim = core.run(max_instructions=budget)
    except SimulationError as exc:
        # A wedge is an outcome too: both backends must wedge identically.
        return {"error": f"{type(exc).__name__}: {exc}"}
    return {
        "cycles": sim.cycles,
        "retired": sim.retired,
        "halted": sim.halted,
        "retired_pcs": sim.retired_pcs,
        "arch_regs": sim.arch_regs,
        "stats": sim.stats,
        "metrics": sim.metrics.as_dict(),
        "digests": channel_digests(sim.observer, sim.cycles),
    }


def compare_cell(ref: dict, vec: dict) -> list:
    """Human-readable mismatch descriptions (empty = bit-identical)."""
    if "error" in ref or "error" in vec:
        if ref.get("error") == vec.get("error"):
            return []
        return [f"outcome: reference={ref.get('error', 'completed')!r} "
                f"vector={vec.get('error', 'completed')!r}"]
    mismatches = []
    for field in ("cycles", "retired", "halted"):
        if ref[field] != vec[field]:
            mismatches.append(
                f"{field}: reference={ref[field]} vector={vec[field]}")
    if ref["retired_pcs"] != vec["retired_pcs"]:
        index = next((i for i, (a, b) in
                      enumerate(zip(ref["retired_pcs"], vec["retired_pcs"]))
                      if a != b), min(len(ref["retired_pcs"]),
                                      len(vec["retired_pcs"])))
        mismatches.append(f"retired-PC stream diverges at retirement "
                          f"#{index}")
    if ref["arch_regs"] != vec["arch_regs"]:
        regs = [i for i, (a, b) in
                enumerate(zip(ref["arch_regs"], vec["arch_regs"])) if a != b]
        mismatches.append(f"architectural registers differ: {regs}")
    stat_keys = [k for k in sorted(set(ref["stats"]) | set(vec["stats"]))
                 if ref["stats"].get(k) != vec["stats"].get(k)]
    if stat_keys:
        mismatches.append(f"stats differ: {', '.join(stat_keys[:8])}")
    if ref["metrics"] != vec["metrics"]:
        mismatches.append("metrics trees differ")
    channels = differing_channels(ref["digests"], vec["digests"])
    if channels:
        mismatches.append(f"trace channels differ: {', '.join(channels)}")
    return mismatches


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        workloads = list(SMOKE_WORKLOADS)
        configs = list(SMOKE_CONFIGS)
        budget = args.budget or SMOKE_BUDGET
    else:
        workloads = sorted(WORKLOADS)
        configs = ["UnsafeBaseline"] + list(FIGURE7_ORDER)
        budget = args.budget or FULL_BUDGET
    if args.workloads:
        workloads = _parse_workloads(args.workloads)
    if args.configs:
        configs = _parse_configs(args.configs)
    models = list(BOTH_MODELS) if args.models == "both" \
        else [AttackModel(args.models)]

    cells = [(w, c, m) for w in workloads for c in configs for m in models]
    failures = 0
    for workload, config, model in cells:
        ref = run_backend(workload, config, model, args.scale, budget,
                          "reference")
        vec = run_backend(workload, config, model, args.scale, budget,
                          "vector")
        mismatches = compare_cell(ref, vec)
        if mismatches:
            failures += 1
            print(f"MISMATCH {workload}/{config}/{model.value}:",
                  file=sys.stderr)
            for line in mismatches:
                print(f"  {line}", file=sys.stderr)
    verdict = "bit-identical" if not failures else f"{failures} DIVERGENT"
    print(f"backend-diff: {len(cells)} cells x 2 backends "
          f"(budget {budget}, scale {args.scale}): {verdict}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
