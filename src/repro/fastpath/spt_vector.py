"""Struct-of-arrays SPT engine for the vector backend.

:class:`VectorSPTEngine` is a drop-in :class:`~repro.core.spt.SPTEngine`
producing bit-identical results, with the per-cycle work restructured
around a fixed window of *slots* (one per ROB entry, allocated circularly
in program order):

* the per-entry taint bits (``t_src1``/``t_src2``/``t_dst``) are mirrored
  into packed Python-int bitmasks indexed by slot, so the Section 6.6
  forward/backward local rules evaluate over the whole window in a
  handful of bitwise operations instead of a per-DynInst Python loop;
* the static rule class of every instruction (pure, invertible-monadic,
  invertible-ALU) comes from the decode-time tables of
  :mod:`repro.fastpath.tables`;
* untaint broadcasts clear matching operand bits by scanning flat numpy
  operand-index vectors instead of iterating the window;
* the STL rules only visit a watch list of forwarded loads instead of the
  whole LSQ.

Every mutation of taint state also bumps the core's activity counter, so
the vector core can prove cycles quiescent and fast-forward them (see
:mod:`repro.fastpath.vector_core`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.attack_model import AttackModel
from repro.core.events import UntaintKind
from repro.core.shadow_l1 import ShadowMode
from repro.core.spt import SPTEngine
from repro.fastpath.deps import require_numpy
from repro.fastpath.tables import (F_INV_ALU, F_INV_MONO, F_PURE,
                                   lower_program)
from repro.pipeline.dyninst import DynInst


class VectorSPTEngine(SPTEngine):
    """SPT with packed-bitmask window state (bit-identical to the parent)."""

    def __init__(self, model: AttackModel, backward: bool = True,
                 shadow: ShadowMode = ShadowMode.L1, ideal: bool = False):
        super().__init__(model, backward=backward, shadow=shadow, ideal=ideal)
        self._np = require_numpy()
        self._cap = 0
        self._head = 0
        self._tail = 0
        self._slot_di: list[Optional[DynInst]] = []
        # Packed per-slot bitmasks (Python ints as bitsets over slots).
        self._t_src1_m = 0
        self._t_src2_m = 0
        self._t_dst_m = 0
        self._pure_m = 0
        self._inv_mono_m = 0
        self._inv_alu_m = 0
        # Flat per-slot operand-register vectors (-1 on free slots).
        self._prs1_v = None
        self._prs2_v = None
        self._prd_v = None
        self._pc_flags: list[int] = []
        # Forwarded loads currently subject to the STL rules (Section 6.7).
        self._stl_watch: list[DynInst] = []
        self._stl_seen: set[int] = set()

    def attach(self, core) -> None:
        super().attach(core)
        np = self._np
        self._cap = core.params.rob_entries
        self._head = 0
        self._tail = 0
        self._slot_di = [None] * self._cap
        self._t_src1_m = self._t_src2_m = self._t_dst_m = 0
        self._pure_m = self._inv_mono_m = self._inv_alu_m = 0
        self._prs1_v = np.full(self._cap, -1, dtype=np.int16)
        self._prs2_v = np.full(self._cap, -1, dtype=np.int16)
        self._prd_v = np.full(self._cap, -1, dtype=np.int16)
        self._pc_flags = lower_program(core.program).flags
        self._stl_watch = []
        self._stl_seen = set()

    # ------------------------------------------------------- slot lifecycle
    def on_rename(self, di: DynInst) -> None:
        super().on_rename(di)
        slot = self._tail
        self._tail = slot + 1 if slot + 1 < self._cap else 0
        di.fp_slot = slot
        self._slot_di[slot] = di
        bit = 1 << slot
        flags = self._pc_flags[di.pc]
        if flags & F_PURE:
            self._pure_m |= bit
        if flags & F_INV_MONO:
            self._inv_mono_m |= bit
        elif flags & F_INV_ALU:
            self._inv_alu_m |= bit
        if di.t_src1:
            self._t_src1_m |= bit
        if di.t_src2:
            self._t_src2_m |= bit
        if di.t_dst:
            self._t_dst_m |= bit
        self._prs1_v[slot] = di.prs1
        self._prs2_v[slot] = di.prs2
        self._prd_v[slot] = di.prd

    def _free_slot(self, di: DynInst) -> None:
        slot = di.fp_slot
        di.fp_slot = -1
        nbit = ~(1 << slot)
        self._t_src1_m &= nbit
        self._t_src2_m &= nbit
        self._t_dst_m &= nbit
        self._pure_m &= nbit
        self._inv_mono_m &= nbit
        self._inv_alu_m &= nbit
        self._slot_di[slot] = None
        self._prs1_v[slot] = -1
        self._prs2_v[slot] = -1
        self._prd_v[slot] = -1

    def on_retire(self, di: DynInst) -> None:
        # Parent declassification runs first, while the slot is still live.
        super().on_retire(di)
        slot = di.fp_slot
        self._free_slot(di)
        self._head = slot + 1 if slot + 1 < self._cap else 0

    def on_squash(self, squashed: list) -> None:
        super().on_squash(squashed)
        for di in squashed:            # youngest first: the tail retracts
            self._tail = di.fp_slot
            self._free_slot(di)

    # ------------------------------------------------------ untaint requests
    def _request(self, di: Optional[DynInst], slot: str, preg: int,
                 cause: UntaintKind) -> None:
        # Mirror the parent's per-entry bit clears into the packed masks
        # (the parent's early-outs are replicated so a no-op request leaves
        # the masks untouched), and flag the cycle as active.
        if di is not None:
            fp = di.fp_slot
            if slot == "src1":
                if not di.t_src1:
                    return
                if fp >= 0:
                    self._t_src1_m &= ~(1 << fp)
            elif slot == "src2":
                if not di.t_src2:
                    return
                if fp >= 0:
                    self._t_src2_m &= ~(1 << fp)
            else:
                if not di.t_dst:
                    return
                if fp >= 0:
                    self._t_dst_m &= ~(1 << fp)
        self.core._activity += 1
        super()._request(di, slot, preg, cause)

    # ---------------------------------------------------------------- rules
    def _local_rules(self) -> None:
        # Whole-window evaluation of the Section 6.6 rules in O(1) bitops.
        # Forward: pure entry, tainted output, both sources untainted.
        fwd = (self._t_dst_m & self._pure_m
               & ~self._t_src1_m & ~self._t_src2_m)
        # Backward: output untainted (counting a forward fire this pass,
        # matching the reference's within-entry dst-then-src ordering),
        # and the single remaining tainted source is inferable.
        if self.backward:
            t_dst_eff = self._t_dst_m & ~fwd
            bwd = ~t_dst_eff & (
                (self._inv_mono_m & self._t_src1_m)
                | (self._inv_alu_m & (self._t_src1_m ^ self._t_src2_m)))
        else:
            bwd = 0
        fire = fwd | bwd
        if not fire:
            return
        # Process firing slots in window (program) order: the broadcast
        # queue is FIFO, so enqueue order is architecturally visible.
        slots = []
        mask = fire
        while mask:
            low = mask & -mask
            slots.append(low.bit_length() - 1)
            mask ^= low
        head, cap = self._head, self._cap
        if len(slots) > 1:
            slots.sort(key=lambda s: s - head if s >= head else s + cap - head)
        slot_di = self._slot_di
        for s in slots:
            di = slot_di[s]
            bit = 1 << s
            if fwd & bit:
                self._request(di, "dst", di.prd, UntaintKind.FORWARD)
            else:
                if self._inv_mono_m & bit or di.t_src1:
                    self._request(di, "src1", di.prs1, UntaintKind.BACKWARD)
                else:
                    self._request(di, "src2", di.prs2, UntaintKind.BACKWARD)

    def skip_cache_for_forwarding(self, load: DynInst, store: DynInst) -> bool:
        # First sighting of a forwarded load: put it on the STL watch list.
        if load.fwding_st >= 0 and load.seq not in self._stl_seen:
            self._stl_seen.add(load.seq)
            self._stl_watch.append(load)
        return super().skip_cache_for_forwarding(load, store)

    def _stl_rules(self) -> None:
        # Same per-load body as the parent, but only over forwarded loads.
        watch = self._stl_watch
        if not watch:
            return
        if any(ld.retired or ld.squashed for ld in watch):
            watch = [ld for ld in watch if not ld.retired and not ld.squashed]
            self._stl_watch = watch
            self._stl_seen = {ld.seq for ld in watch}
            if not watch:
                return
        if len(watch) > 1:
            watch.sort(key=lambda d: d.seq)    # LSQ (program) order
        for load in watch:
            store = load.forwarded_from
            if not load.stl_public:
                if not self._stl_public(load, store):
                    continue
                load.stl_public = True
            if not store.t_src2 and load.t_dst:
                self._request(load, "dst", load.prd, UntaintKind.STL_FORWARD)
            elif self.backward and not load.t_dst and store.t_src2:
                target = store if not store.retired else None
                self._request(target, "src2", store.prs2,
                              UntaintKind.STL_BACKWARD)
                store.t_src2 = False
                if store.fp_slot >= 0:
                    self._t_src2_m &= ~(1 << store.fp_slot)
                self.core._activity += 1

    # -------------------------------------------------------------- broadcast
    def _broadcast(self, limit: Optional[int]) -> int:
        if self._pending:
            self.core._activity += 1
        return super()._broadcast(limit)

    def _clear_entry_bits(self, preg: int) -> None:
        # The reference scans the whole window per broadcast register; the
        # operand-index vectors reduce that to one vectorised compare.
        hits = self._np.flatnonzero((self._prs1_v == preg)
                                    | (self._prs2_v == preg)
                                    | (self._prd_v == preg))
        if hits.size == 0:
            return
        slot_di = self._slot_di
        for s in hits.tolist():
            di = slot_di[s]
            nbit = ~(1 << s)
            if di.prs1 == preg:
                di.t_src1 = False
                di.pend_src1 = False
                self._t_src1_m &= nbit
            if di.prs2 == preg:
                di.t_src2 = False
                di.pend_src2 = False
                self._t_src2_m &= nbit
            if di.prd == preg:
                di.t_dst = False
                di.pend_dst = False
                self._t_dst_m &= nbit


def vectorize_engine(engine):
    """Upgrade a reference engine to its vector twin where one exists.

    Engines without a vector implementation (baselines, STT) run unchanged
    under the vector core — they still benefit from quiescent-cycle
    fast-forwarding.  Exact-type match on purpose: an unknown SPTEngine
    subclass must not be silently replaced.
    """
    if type(engine) is SPTEngine:
        return VectorSPTEngine(engine.model, backward=engine.backward,
                               shadow=engine.shadow_mode, ideal=engine.ideal)
    return engine
