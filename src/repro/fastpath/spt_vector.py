"""Struct-of-arrays SPT engine for the vector backend.

:class:`VectorSPTEngine` is a drop-in :class:`~repro.core.spt.SPTEngine`
producing bit-identical results, with the per-cycle work restructured
around a fixed window of *slots* (one per ROB entry, allocated circularly
in program order):

* the per-entry taint bits (``t_src1``/``t_src2``/``t_dst``) are mirrored
  into packed Python-int bitmasks indexed by slot, so the Section 6.6
  forward/backward local rules evaluate over the whole window in a
  handful of bitwise operations instead of a per-DynInst Python loop;
* the static rule class of every instruction (pure, invertible-monadic,
  invertible-ALU) comes from the decode-time tables of
  :mod:`repro.fastpath.tables`, and the rename-time taint initialisation
  is folded into the same table lookup (one ``on_rename``, no chained
  parent call on the hot path);
* the dependence matrix is kept as packed bitmasks *per physical
  register* (a flat row per preg: bitset of window slots referencing
  it), so an untaint broadcast clears matching operand bits by walking
  one lazily-validated row instead of scanning the window;
* the STL rules only visit a watch list of forwarded loads instead of the
  whole LSQ.

Every mutation of taint state also bumps the core's activity counter, so
the vector core can prove cycles quiescent and fast-forward them (see
:mod:`repro.fastpath.vector_core`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.attack_model import AttackModel
from repro.core.events import UntaintKind
from repro.core.shadow_l1 import ShadowMode
from repro.core.spt import SPTEngine
from repro.fastpath.deps import require_numpy
from repro.fastpath.tables import (F_BRANCH, F_INV_ALU, F_INV_MONO, F_JUMP_REG,
                                   F_LOAD, F_PC_INFERABLE, F_PURE,
                                   F_TRANSMITTER, lower_program)
from repro.pipeline.dyninst import DynInst

# Newly-VP kinds the tick loop declassifies (Section 6.6).
_F_DECLASS = F_TRANSMITTER | F_BRANCH | F_JUMP_REG


class VectorSPTEngine(SPTEngine):
    """SPT with packed-bitmask window state (bit-identical to the parent)."""

    def __init__(self, model: AttackModel, backward: bool = True,
                 shadow: ShadowMode = ShadowMode.L1, ideal: bool = False):
        super().__init__(model, backward=backward, shadow=shadow, ideal=ideal)
        # The vector backend's numpy contract (whole-array table lowering);
        # the engine's own per-cycle state is pure Python-int bitmasks.
        require_numpy()
        self._cap = 0
        self._head = 0
        self._tail = 0
        self._slot_di: list[Optional[DynInst]] = []
        # Packed per-slot bitmasks (Python ints as bitsets over slots).
        self._t_src1_m = 0
        self._t_src2_m = 0
        self._t_dst_m = 0
        self._pure_m = 0
        self._inv_mono_m = 0
        self._inv_alu_m = 0
        # Dependence matrix rows: preg -> bitset of slots whose entry
        # references it (as src1, src2 or dst), stored as a flat list
        # indexed by physical register.  Rows are built at rename and
        # validated lazily by the broadcast walk (slot frees do not prune
        # them), so a broadcast touches at most the slots that referenced
        # the register since its last broadcast — and clears exactly the
        # entries the reference's whole-window scan would have matched.
        self._preg_slots: list[int] = []
        self._pc_flags: list[int] = []
        # Forwarded loads currently subject to the STL rules (Section 6.7).
        self._stl_watch: list[DynInst] = []
        self._stl_seen: set[int] = set()

    def attach(self, core) -> None:
        super().attach(core)
        self._cap = core.params.rob_entries
        self._head = 0
        self._tail = 0
        self._slot_di = [None] * self._cap
        self._t_src1_m = self._t_src2_m = self._t_dst_m = 0
        self._pure_m = self._inv_mono_m = self._inv_alu_m = 0
        self._preg_slots = [0] * core.params.num_phys_regs
        self._pc_flags = lower_program(core.program).flags
        self._stl_watch = []
        self._stl_seen = set()

    # ------------------------------------------------------- slot lifecycle
    def on_rename(self, di: DynInst) -> None:
        # Merged parent rename: the taint initialisation (SPTEngine
        # .on_rename / taint_algebra.initial_output_taint, Section 6.3)
        # re-expressed over the decode-table flags so one pass fills both
        # the per-entry bits and the packed window masks.
        taint = self.taint
        prs1 = di.prs1
        prs2 = di.prs2
        prd = di.prd
        t1 = prs1 >= 0 and taint[prs1]
        t2 = prs2 >= 0 and taint[prs2]
        di.t_src1 = t1
        di.t_src2 = t2
        flags = self._pc_flags[di.pc]
        if flags & F_LOAD:
            tainted = True             # memory taint unknown at rename
        elif flags & F_PC_INFERABLE:
            tainted = False            # Section 6.5
        else:
            tainted = t1 or t2
        # t_dst is kept even for discarded destinations (rd = x0): the
        # backward rules must not treat a never-observable result as public.
        di.t_dst = tainted
        if prd >= 0:
            taint[prd] = tainted
            if tainted:
                self._taint_since[prd] = self.core.cycle
            else:
                self._taint_since.pop(prd, None)
        slot = self._tail
        self._tail = slot + 1 if slot + 1 < self._cap else 0
        di.fp_slot = slot
        self._slot_di[slot] = di
        bit = 1 << slot
        if flags & F_PURE:
            self._pure_m |= bit
        if flags & F_INV_MONO:
            self._inv_mono_m |= bit
        elif flags & F_INV_ALU:
            self._inv_alu_m |= bit
        if t1:
            self._t_src1_m |= bit
        if t2:
            self._t_src2_m |= bit
        if tainted:
            self._t_dst_m |= bit
        rows = self._preg_slots
        if prs1 >= 0:
            rows[prs1] |= bit
        if prs2 >= 0 and prs2 != prs1:
            rows[prs2] |= bit
        if prd >= 0:
            # A fresh destination register cannot alias a source row: prd
            # comes off the free list, sources off the RAT.
            rows[prd] |= bit

    def _free_slot(self, di: DynInst) -> None:
        # O(1): clear the slot's bit in every packed mask.  The dependence
        # rows are *not* pruned here — stale row bits are filtered lazily
        # by the broadcast walk (``_clear_entry_bits``), which validates
        # each slot against the live entry's registers before clearing.
        slot = di.fp_slot
        di.fp_slot = -1
        bit = 1 << slot
        nbit = ~bit
        self._t_src1_m &= nbit
        self._t_src2_m &= nbit
        self._t_dst_m &= nbit
        self._pure_m &= nbit
        self._inv_mono_m &= nbit
        self._inv_alu_m &= nbit
        self._slot_di[slot] = None

    def on_retire(self, di: DynInst) -> None:
        # Parent declassification runs first, while the slot is still live.
        super().on_retire(di)
        slot = di.fp_slot
        self._free_slot(di)
        self._head = slot + 1 if slot + 1 < self._cap else 0

    def on_squash(self, squashed: list) -> None:
        super().on_squash(squashed)
        if not squashed:
            return
        # Youngest first: the tail retracts to the oldest victim's slot.
        # All victims' mask bits fall in one batched clear.
        self._tail = squashed[-1].fp_slot
        slot_di = self._slot_di
        dead = 0
        for di in squashed:
            dead |= 1 << di.fp_slot
            slot_di[di.fp_slot] = None
            di.fp_slot = -1
        live = ~dead
        self._t_src1_m &= live
        self._t_src2_m &= live
        self._t_dst_m &= live
        self._pure_m &= live
        self._inv_mono_m &= live
        self._inv_alu_m &= live

    # ------------------------------------------------------ untaint requests
    def _request(self, di: Optional[DynInst], slot: str, preg: int,
                 cause: UntaintKind) -> None:
        # Mirror the parent's per-entry bit clears into the packed masks
        # (the parent's early-outs are replicated so a no-op request leaves
        # the masks untouched), and flag the cycle as active.
        if di is not None:
            fp = di.fp_slot
            if slot == "src1":
                if not di.t_src1:
                    return
                if fp >= 0:
                    self._t_src1_m &= ~(1 << fp)
            elif slot == "src2":
                if not di.t_src2:
                    return
                if fp >= 0:
                    self._t_src2_m &= ~(1 << fp)
            else:
                if not di.t_dst:
                    return
                if fp >= 0:
                    self._t_dst_m &= ~(1 << fp)
        self.core._activity += 1
        super()._request(di, slot, preg, cause)

    # ------------------------------------------------------------------ tick
    def tick(self) -> None:
        # Parent tick with the empty cases short-circuited: no watch list
        # means no STL rules, and an empty broadcast queue means the parent
        # would only have recorded a zero cycle width — a no-op on the
        # histogram (UntaintEvents.record_cycle_width ignores zeros).
        newly_vp = self.core.advance_vp(self.vp_predicate)
        if newly_vp:
            flags = self._pc_flags
            for di in newly_vp:
                if flags[di.pc] & _F_DECLASS:
                    self._declassify(di)
        if self.ideal:
            self._tick_ideal()
            return
        if self._stl_watch:
            self._stl_rules()
        self._local_rules()
        if self._pending:
            self.core._activity += 1
            SPTEngine._broadcast(self, self.width)

    # ---------------------------------------------------------------- rules
    def _local_rules(self) -> None:
        # Whole-window evaluation of the Section 6.6 rules in O(1) bitops.
        if not (self._t_dst_m | self._t_src1_m | self._t_src2_m):
            return    # no tainted bit anywhere: neither rule can fire
        # Forward: pure entry, tainted output, both sources untainted.
        fwd = (self._t_dst_m & self._pure_m
               & ~self._t_src1_m & ~self._t_src2_m)
        # Backward: output untainted (counting a forward fire this pass,
        # matching the reference's within-entry dst-then-src ordering),
        # and the single remaining tainted source is inferable.
        if self.backward:
            t_dst_eff = self._t_dst_m & ~fwd
            bwd = ~t_dst_eff & (
                (self._inv_mono_m & self._t_src1_m)
                | (self._inv_alu_m & (self._t_src1_m ^ self._t_src2_m)))
        else:
            bwd = 0
        fire = fwd | bwd
        if not fire:
            return
        # Process firing slots in window (program) order: the broadcast
        # queue is FIFO, so enqueue order is architecturally visible.
        slots = []
        mask = fire
        while mask:
            low = mask & -mask
            slots.append(low.bit_length() - 1)
            mask ^= low
        head, cap = self._head, self._cap
        if len(slots) > 1:
            slots.sort(key=lambda s: s - head if s >= head else s + cap - head)
        slot_di = self._slot_di
        for s in slots:
            di = slot_di[s]
            bit = 1 << s
            if fwd & bit:
                self._request(di, "dst", di.prd, UntaintKind.FORWARD)
            else:
                if self._inv_mono_m & bit or di.t_src1:
                    self._request(di, "src1", di.prs1, UntaintKind.BACKWARD)
                else:
                    self._request(di, "src2", di.prs2, UntaintKind.BACKWARD)

    def skip_cache_for_forwarding(self, load: DynInst, store: DynInst) -> bool:
        # First sighting of a forwarded load: put it on the STL watch list.
        if load.fwding_st >= 0 and load.seq not in self._stl_seen:
            self._stl_seen.add(load.seq)
            self._stl_watch.append(load)
        return super().skip_cache_for_forwarding(load, store)

    def _stl_rules(self) -> None:
        # Same per-load body as the parent, but only over forwarded loads.
        watch = self._stl_watch
        if not watch:
            return
        if any(ld.retired or ld.squashed for ld in watch):
            watch = [ld for ld in watch if not ld.retired and not ld.squashed]
            self._stl_watch = watch
            self._stl_seen = {ld.seq for ld in watch}
            if not watch:
                return
        if len(watch) > 1:
            watch.sort(key=lambda d: d.seq)    # LSQ (program) order
        for load in watch:
            store = load.forwarded_from
            if not load.stl_public:
                if not self._stl_public(load, store):
                    continue
                load.stl_public = True
            if not store.t_src2 and load.t_dst:
                self._request(load, "dst", load.prd, UntaintKind.STL_FORWARD)
            elif self.backward and not load.t_dst and store.t_src2:
                target = store if not store.retired else None
                self._request(target, "src2", store.prs2,
                              UntaintKind.STL_BACKWARD)
                store.t_src2 = False
                if store.fp_slot >= 0:
                    self._t_src2_m &= ~(1 << store.fp_slot)
                self.core._activity += 1

    # -------------------------------------------------------------- broadcast
    def _broadcast(self, limit: Optional[int]) -> int:
        if self._pending:
            self.core._activity += 1
        return super()._broadcast(limit)

    def _clear_entry_bits(self, preg: int) -> None:
        # The reference scans the whole window per broadcast register; the
        # dependence row reduces that to one dict lookup plus a walk of the
        # slots recorded as referencing the register.  Rows are not pruned
        # when slots free (``_free_slot`` is O(1)), so the walk validates
        # each slot — an emptied or reused slot whose entry no longer
        # references ``preg`` is exactly what the reference's per-entry
        # field test would skip, and its stale bit is dropped from the row
        # here.  A reused slot whose *new* entry references ``preg`` again
        # is a true match (rename re-ORed its bit).  The per-slot clears
        # are independent, so the ascending-slot walk is equivalent to the
        # reference's program-order ROB scan.
        rows = self._preg_slots
        mask = rows[preg]
        if not mask:
            return
        slot_di = self._slot_di
        row = mask
        while mask:
            low = mask & -mask
            mask ^= low
            di = slot_di[low.bit_length() - 1]
            if di is None:
                row ^= low
                continue
            nbit = ~low
            hit = False
            if di.prs1 == preg:
                hit = True
                di.t_src1 = False
                di.pend_src1 = False
                self._t_src1_m &= nbit
            if di.prs2 == preg:
                hit = True
                di.t_src2 = False
                di.pend_src2 = False
                self._t_src2_m &= nbit
            if di.prd == preg:
                hit = True
                di.t_dst = False
                di.pend_dst = False
                self._t_dst_m &= nbit
            if not hit:
                row ^= low
        rows[preg] = row


def vectorize_engine(engine):
    """Upgrade a reference engine to its vector twin where one exists.

    Engines without a vector implementation (baselines, STT) run unchanged
    under the vector core — they still benefit from quiescent-cycle
    fast-forwarding.  Exact-type match on purpose: an unknown SPTEngine
    subclass must not be silently replaced.
    """
    if type(engine) is SPTEngine:
        return VectorSPTEngine(engine.model, backward=engine.backward,
                               shadow=engine.shadow_mode, ideal=engine.ideal)
    return engine
