"""Decode-time lowering of per-instruction metadata to flat flag tables.

The reference engines re-derive instruction classes (pure, invertible,
transmitter, leaked operands, ...) from :mod:`repro.core.taint_algebra`
and :class:`~repro.isa.opcodes.OpInfo` on every consult.  The vector
backend instead lowers every static instruction of a program **once** to
a packed flag word, so the per-cycle rule evaluation indexes a flat
array instead of chasing Python attributes.

Every flag is *defined* in terms of the reference predicates (the tests
compare the table against the functions over all opcodes); the lowering
must never restate a rule independently.
"""

from __future__ import annotations

from repro.core.taint_algebra import (PC_INFERABLE_KINDS, PURE_KINDS,
                                      leaked_operands)
from repro.isa.instructions import Instruction, Program
from repro.isa.opcodes import Kind, OpInfo

from repro.fastpath.deps import np

# Flag bits of one lowered instruction word.
F_PURE = 1 << 0          # kind in PURE_KINDS: forward rule applies
F_INV_MONO = 1 << 1      # invertible MOVE/ALU_IMM: backward -> src1
F_INV_ALU = 1 << 2       # invertible ALU: backward -> the one tainted src
F_READS_RS2 = 1 << 3
F_LOAD = 1 << 4
F_STORE = 1 << 5
F_TRANSMITTER = 1 << 6
F_BRANCH = 1 << 7
F_JUMP_REG = 1 << 8
F_PC_INFERABLE = 1 << 9  # output public by Property 1 (Section 6.5)
F_LEAK_SRC1 = 1 << 10    # declassification leaks src1 at the VP
F_LEAK_SRC2 = 1 << 11    # declassification leaks src2 at the VP


def lower_instruction(inst: Instruction) -> int:
    """The packed flag word for one static instruction."""
    info: OpInfo = inst.info
    kind = info.kind
    flags = 0
    if kind in PURE_KINDS:
        flags |= F_PURE
    if info.invertible:
        if kind in (Kind.MOVE, Kind.ALU_IMM):
            flags |= F_INV_MONO
        elif kind == Kind.ALU:
            flags |= F_INV_ALU
    if info.reads_rs2:
        flags |= F_READS_RS2
    if kind == Kind.LOAD:
        flags |= F_LOAD
    if kind == Kind.STORE:
        flags |= F_STORE
    if info.is_transmitter:
        flags |= F_TRANSMITTER
    if kind == Kind.BRANCH:
        flags |= F_BRANCH
    if kind == Kind.JUMP_REG:
        flags |= F_JUMP_REG
    if kind in PC_INFERABLE_KINDS:
        flags |= F_PC_INFERABLE
    leaked = leaked_operands(inst)
    if "src1" in leaked:
        flags |= F_LEAK_SRC1
    if "src2" in leaked:
        flags |= F_LEAK_SRC2
    return flags


# Fetch classes (``kindc``): how the batched fetch loop treats a PC.
KC_SIMPLE = 0      # straight-line: fetched in run-length batches
KC_CONTROL = 1     # BRANCH/JUMP/JUMP_REG: per-instruction predict path
KC_HALT = 2        # HALT: fetch stops after buffering it

# Dispatch classes (``dclass``): which dispatch-time resources a PC takes.
DC_RS = 0          # plain RS entry (ALU/branch/...)
DC_LOAD = 1        # RS entry + LQ entry
DC_STORE = 2       # RS entry + SQ entry
DC_NONE = 3        # HALT/NOP: completes at dispatch
DC_JUMP = 4        # JAL: link write + completes at dispatch


class ProgramTable:
    """Flat per-PC metadata for one program.

    ``flags`` is a plain Python list (scalar indexing by PC in the hot
    loop beats a numpy element read); ``flags_v``/``latency_v``/
    ``mem_size_v`` are the numpy views used by whole-array operations.

    The remaining columns drive the vector backend's batched frontend
    (:mod:`repro.fastpath.vector_core`): ``insts``/``infos`` give the
    fetch loop direct references (no ``inst.info`` property per fetch),
    ``kindc``/``runlen`` classify PCs for run-length batch fetch
    (``runlen[pc]`` = number of consecutive ``KC_SIMPLE`` instructions
    starting at ``pc``), and ``hasdest``/``needs_rs``/``dclass`` encode
    the per-PC dispatch checks the reference re-derives per dynamic
    instruction.  Every column is *defined* by the reference predicates
    (``Instruction.dest_reg``, the ``_dispatch`` kind tests); the tests
    pin them against those functions over all opcodes.
    """

    __slots__ = ("flags", "flags_v", "latency_v", "mem_size_v",
                 "insts", "infos", "kindc", "runlen",
                 "hasdest", "needs_rs", "dclass", "rtier", "aluc")

    def __init__(self, program: Program):
        self.flags = [lower_instruction(inst) for inst in program]
        insts = list(program)
        self.insts = insts
        self.infos = [inst.info for inst in insts]
        kindc = []
        hasdest = []
        needs_rs = []
        dclass = []
        rtier = []
        for inst, info in zip(insts, self.infos):
            kind = info.kind
            if kind == Kind.HALT:
                kindc.append(KC_HALT)
            elif kind in (Kind.BRANCH, Kind.JUMP, Kind.JUMP_REG):
                kindc.append(KC_CONTROL)
            else:
                kindc.append(KC_SIMPLE)
            hasdest.append(inst.dest_reg() is not None)
            needs_rs.append(kind not in (Kind.HALT, Kind.NOP, Kind.JUMP))
            if kind == Kind.LOAD:
                dclass.append(DC_LOAD)
            elif kind == Kind.STORE:
                dclass.append(DC_STORE)
            elif kind in (Kind.HALT, Kind.NOP):
                dclass.append(DC_NONE)
            elif kind == Kind.JUMP:
                dclass.append(DC_JUMP)
            else:
                dclass.append(DC_RS)
            # Recycled-reinit tier (DynInst.reinit_recycled): which extra
            # fields a same-pc pooled re-stamp must clear.  JAL is tier 0:
            # its ``resolution_applied`` is unconditionally re-set at
            # dispatch before anything can read it.
            if kind in (Kind.LOAD, Kind.STORE):
                rtier.append(1)
            elif kind in (Kind.BRANCH, Kind.JUMP_REG):
                rtier.append(2)
            else:
                rtier.append(0)
        self.kindc = kindc
        self.hasdest = hasdest
        self.needs_rs = needs_rs
        self.dclass = dclass
        self.rtier = rtier
        # ALU-class PCs (the reference _execute's first arm): issue takes
        # the inlined compute-and-schedule path for these.
        self.aluc = [info.kind in (Kind.ALU, Kind.ALU_IMM, Kind.MOVE,
                                   Kind.LOAD_IMM)
                     for info in self.infos]
        # Run lengths of consecutive simple instructions, computed right to
        # left: runlen[pc] answers "how many PCs can the fetch loop batch
        # from here before it must take the per-instruction path".
        runlen = [0] * len(insts)
        run = 0
        for pc in range(len(insts) - 1, -1, -1):
            run = run + 1 if kindc[pc] == KC_SIMPLE else 0
            runlen[pc] = run
        self.runlen = runlen
        if np is not None:
            self.flags_v = np.asarray(self.flags, dtype=np.uint32)
            self.latency_v = np.asarray([inst.info.latency
                                         for inst in program],
                                        dtype=np.int32)
            self.mem_size_v = np.asarray([inst.info.mem_size
                                          for inst in program],
                                         dtype=np.int32)
        else:                      # pragma: no cover - no-numpy fallback
            self.flags_v = None
            self.latency_v = None
            self.mem_size_v = None


def lower_program(program: Program) -> ProgramTable:
    """Lower ``program``, caching the table on the program object.

    Programs are immutable once assembled (the core copies the memory
    image, never the other way around), and both the vector core and the
    vector SPT engine lower the same program at construction — the cache
    makes that one lowering, and makes repeated runs of one workload
    program table-free.
    """
    table = getattr(program, "_fastpath_table", None)
    if table is None:
        table = ProgramTable(program)
        program._fastpath_table = table
    return table
