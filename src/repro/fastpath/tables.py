"""Decode-time lowering of per-instruction metadata to flat flag tables.

The reference engines re-derive instruction classes (pure, invertible,
transmitter, leaked operands, ...) from :mod:`repro.core.taint_algebra`
and :class:`~repro.isa.opcodes.OpInfo` on every consult.  The vector
backend instead lowers every static instruction of a program **once** to
a packed flag word, so the per-cycle rule evaluation indexes a flat
array instead of chasing Python attributes.

Every flag is *defined* in terms of the reference predicates (the tests
compare the table against the functions over all opcodes); the lowering
must never restate a rule independently.
"""

from __future__ import annotations

from repro.core.taint_algebra import (PC_INFERABLE_KINDS, PURE_KINDS,
                                      leaked_operands)
from repro.isa.instructions import Instruction, Program
from repro.isa.opcodes import Kind, OpInfo

from repro.fastpath.deps import np

# Flag bits of one lowered instruction word.
F_PURE = 1 << 0          # kind in PURE_KINDS: forward rule applies
F_INV_MONO = 1 << 1      # invertible MOVE/ALU_IMM: backward -> src1
F_INV_ALU = 1 << 2       # invertible ALU: backward -> the one tainted src
F_READS_RS2 = 1 << 3
F_LOAD = 1 << 4
F_STORE = 1 << 5
F_TRANSMITTER = 1 << 6
F_BRANCH = 1 << 7
F_JUMP_REG = 1 << 8
F_PC_INFERABLE = 1 << 9  # output public by Property 1 (Section 6.5)
F_LEAK_SRC1 = 1 << 10    # declassification leaks src1 at the VP
F_LEAK_SRC2 = 1 << 11    # declassification leaks src2 at the VP


def lower_instruction(inst: Instruction) -> int:
    """The packed flag word for one static instruction."""
    info: OpInfo = inst.info
    kind = info.kind
    flags = 0
    if kind in PURE_KINDS:
        flags |= F_PURE
    if info.invertible:
        if kind in (Kind.MOVE, Kind.ALU_IMM):
            flags |= F_INV_MONO
        elif kind == Kind.ALU:
            flags |= F_INV_ALU
    if info.reads_rs2:
        flags |= F_READS_RS2
    if kind == Kind.LOAD:
        flags |= F_LOAD
    if kind == Kind.STORE:
        flags |= F_STORE
    if info.is_transmitter:
        flags |= F_TRANSMITTER
    if kind == Kind.BRANCH:
        flags |= F_BRANCH
    if kind == Kind.JUMP_REG:
        flags |= F_JUMP_REG
    if kind in PC_INFERABLE_KINDS:
        flags |= F_PC_INFERABLE
    leaked = leaked_operands(inst)
    if "src1" in leaked:
        flags |= F_LEAK_SRC1
    if "src2" in leaked:
        flags |= F_LEAK_SRC2
    return flags


class ProgramTable:
    """Flat per-PC metadata for one program.

    ``flags`` is a plain Python list (scalar indexing by PC in the hot
    loop beats a numpy element read); ``flags_v``/``latency_v``/
    ``mem_size_v`` are the numpy views used by whole-array operations.
    """

    __slots__ = ("flags", "flags_v", "latency_v", "mem_size_v")

    def __init__(self, program: Program):
        self.flags = [lower_instruction(inst) for inst in program]
        if np is not None:
            self.flags_v = np.asarray(self.flags, dtype=np.uint32)
            self.latency_v = np.asarray([inst.info.latency
                                         for inst in program],
                                        dtype=np.int32)
            self.mem_size_v = np.asarray([inst.info.mem_size
                                          for inst in program],
                                         dtype=np.int32)
        else:                      # pragma: no cover - no-numpy fallback
            self.flags_v = None
            self.latency_v = None
            self.mem_size_v = None


def lower_program(program: Program) -> ProgramTable:
    return ProgramTable(program)
