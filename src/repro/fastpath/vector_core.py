"""Vector-backend core: quiescent-cycle fast-forwarding over the OoO model.

:class:`VectorCore` is an :class:`~repro.pipeline.core.OoOCore` whose run
loop proves cycles quiescent and jumps over them.  The core's activity
counter is bumped at every true state mutation; a :meth:`step` that
leaves it unchanged demonstrated that *nothing* in the machine moved, so
every following cycle is an identical no-op until the next scheduled
event (a completion bucket, the fetch-redirect resume, the fetch
buffer's frontend delay, or an MSHR expiry).  Time then jumps straight
to the cycle before that event, with the skipped cycles accounted for in
batch:

* stall-cause buckets get ``skipped`` cycles of the same cause the
  detection cycle had (split at the squash-recovery boundary, the single
  cycle-dependent attribution);
* the per-cycle delayed-transmitter/-resolution counters get the
  detection cycle's delta replayed ``skipped`` times;
* engines replay their own per-cycle counters via
  :meth:`~repro.pipeline.engine_api.ProtectionEngine.on_quiet_cycles`.

Fast-forwarding is disabled under ``check_level != "off"`` — the
lockstep sanitizer wants to see every cycle — which is exactly the mode
CI uses to pin the vector backend against the golden interpreter.
"""

from __future__ import annotations

from typing import Optional

from repro.fastpath.deps import require_numpy
from repro.fastpath.spt_vector import vectorize_engine
from repro.obs.stall import StallCause, attribute_cycle
from repro.pipeline.core import OoOCore, SimResult, SimulationError

_SQUASH_RECOVERY = int(StallCause.SQUASH_RECOVERY)
_FETCH_STARVED = int(StallCause.FETCH_STARVED)


class VectorCore(OoOCore):
    """OoO core with the struct-of-arrays fast path (backend="vector")."""

    def __init__(self, program, engine=None, params=None, **kwargs):
        require_numpy()
        if engine is not None:
            engine = vectorize_engine(engine)
        super().__init__(program, engine=engine, params=params, **kwargs)

    # ------------------------------------------------------------------ run
    def run(self, max_instructions: int = 1_000_000) -> SimResult:
        """Reference run loop plus quiescent-cycle fast-forwarding."""
        budget = max_instructions
        last_progress_cycle = 0
        last_retired = 0
        quiet_before: tuple = ()
        trans_before = res_before = 0
        # Under the lockstep sanitizer every cycle must be stepped.
        jumping = self.checker is None
        engine = self.engine
        while not self.halted and self.retired_count < budget:
            if jumping:
                activity = self._activity
                quiet_before = engine.quiet_state()
                trans_before = self._transmitters_delayed
                res_before = self._resolutions_delayed
            self.step()
            if self.retired_count != last_retired:
                last_retired = self.retired_count
                last_progress_cycle = self.cycle
            elif self.cycle - last_progress_cycle > 100_000:
                raise SimulationError(
                    f"{self.engine.name}/{self.program.name}: no retirement "
                    f"for 100k cycles at cycle {self.cycle} "
                    f"(head={self.head_inst()!r})")
            if self.cycle >= self.params.max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded max_cycles")
            if (jumping and not self.halted
                    and self._activity == activity):
                self._quiet_jump(last_progress_cycle, quiet_before,
                                 trans_before, res_before)
                if self.cycle >= self.params.max_cycles:
                    raise SimulationError(
                        f"{self.program.name}: exceeded max_cycles")
        if self.checker is not None:
            self.checker.on_finish(self.halted)
        return SimResult(self, self.halted)

    # ---------------------------------------------------------- fast-forward
    def _next_event_cycle(self) -> Optional[int]:
        """First future cycle at which the quiescent machine can move."""
        candidates = []
        if self._completion_buckets:
            candidates.append(min(self._completion_buckets))
        if (not self.fetch_halted and self.fetch_wait_for is None
                and self.cycle < self.fetch_resume_cycle
                and len(self.fetch_buffer) < 4 * self.params.fetch_width):
            candidates.append(self.fetch_resume_cycle)
        if self.fetch_buffer:
            ready = self.fetch_buffer[0][0]
            if ready > self.cycle:
                candidates.append(ready)
        # A load stalled on exhausted MSHRs unblocks at the expiry that
        # first brings the busy count under the pool size.
        for di in self.lsq:
            if (di.is_load and di.addr_ready and not di.mem_issued
                    and not di.mem_complete and not di.squashed):
                busy = sorted(t for t in self.hierarchy._mshr_busy_until
                              if t > self.cycle)
                mshrs = self.hierarchy.params.mshrs
                if len(busy) >= mshrs:
                    candidates.append(busy[len(busy) - mshrs])
                break
        if not candidates:
            return None
        return min(candidates)

    def _quiet_jump(self, last_progress_cycle: int, quiet_before: tuple,
                    trans_before: int, res_before: int) -> None:
        """Jump time to just before the next event, accounting in batch."""
        cycle = self.cycle
        # Never jump past the deadlock detector or the cycle cap: landing
        # exactly on them reproduces the reference's raises byte-for-byte.
        horizon = last_progress_cycle + 100_000
        if self.params.max_cycles < horizon:
            horizon = self.params.max_cycles
        event = self._next_event_cycle()
        if event is None:
            land = horizon
        else:
            land = min(event - 1, horizon)
        skipped = land - cycle
        if skipped <= 0:
            return
        # Stall attribution: the skipped cycles repeat the detection
        # cycle's cause; only the empty-window case is cycle-dependent
        # (squash-recovery turns into fetch-starved at the refill boundary).
        if self.rob_head >= len(self.rob):
            recovery_end = (self.last_squash_cycle
                            + self.params.redirect_penalty
                            + self.params.frontend_delay)
            n_recovery = min(land, recovery_end) - cycle
            if n_recovery < 0:
                n_recovery = 0
            self.stall_counts[_SQUASH_RECOVERY] += n_recovery
            self.stall_counts[_FETCH_STARVED] += skipped - n_recovery
        else:
            self.stall_counts[int(attribute_cycle(self))] += skipped
        # Per-cycle monotone counters: replay the detection cycle's delta.
        delta = self._transmitters_delayed - trans_before
        if delta:
            self._transmitters_delayed += delta * skipped
        delta = self._resolutions_delayed - res_before
        if delta:
            self._resolutions_delayed += delta * skipped
        self.engine.on_quiet_cycles(skipped, quiet_before)
        self.cycle = land
