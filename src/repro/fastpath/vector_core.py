"""Vector-backend core: batched pipeline phases + quiescent fast-forwarding.

:class:`VectorCore` is an :class:`~repro.pipeline.core.OoOCore` with two
layers of mechanical speed work, both bit-identical to the reference by
construction and by the differential suite (``repro backend-diff``, the
commit-lockstep sanitizer, the bench stall witnesses):

**Quiescent-cycle fast-forwarding** (PR 5).  The core's activity counter
is bumped at every true state mutation; a :meth:`step` that leaves it
unchanged demonstrated that *nothing* in the machine moved, so every
following cycle is an identical no-op until the next scheduled event (a
completion bucket, the fetch-redirect resume, the fetch buffer's
frontend delay, or an MSHR expiry).  Time then jumps straight to the
cycle before that event, with the skipped cycles accounted for in batch:

* stall-cause buckets get ``skipped`` cycles of the same cause the
  detection cycle had (split at the squash-recovery boundary, the single
  cycle-dependent attribution);
* the per-cycle delayed-transmitter/-resolution counters get the
  detection cycle's delta replayed ``skipped`` times;
* engines replay their own per-cycle counters via
  :meth:`~repro.pipeline.engine_api.ProtectionEngine.on_quiet_cycles`.

**Batched phases over the decode tables** (this layer).  The stepped
cycles that remain are dominated by per-instruction Python in the shared
frontend/scheduler, amplified ~8.6x by wrong-path overfetch.  When no
observer needs per-instruction materialisation (no sanitizer, no
tracer), the phases switch to table-driven fast paths:

* **batch fetch** decodes whole straight-line runs against the
  :class:`~repro.fastpath.tables.ProgramTable` run-length column in one
  tight loop, re-stamping pooled :class:`DynInst` carcasses
  (:meth:`DynInst.reinit`) instead of allocating — squash victims are
  quarantined until their squash cycle has passed *and* any still
  scheduled completion-bucket entry has drained, then recycled;
* **table-driven dispatch** replaces the per-instruction kind tests and
  method calls with precomputed ``dclass``/``hasdest``/``needs_rs``
  columns and registers each entry with the wakeup network;
* **wakeup-driven select** replaces the per-RS-entry scan: waiters are
  keyed by physical register, writeback wakes them by decrementing a
  pending-operand count, and ready candidates merge with the
  engine-gated list in seq order — reproducing the reference issue
  loop's program-order width/gating semantics without touching entries
  whose operands cannot have changed.  Structures hold ``(seq, di)``
  pairs and revalidate ``di.seq`` before trusting an entry, which makes
  stale references from squashes (and pooled recycling) self-cleaning.

Both layers are disabled under ``check_level != "off"`` (the lockstep
sanitizer wants to see every cycle and every real ``DynInst``) and when
a tracer installed a squash sink — exactly the modes CI uses to pin the
vector backend against the golden interpreter.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Optional

from repro.fastpath.deps import require_numpy
from repro.fastpath.spt_vector import VectorSPTEngine, vectorize_engine
from repro.fastpath.tables import (DC_JUMP, DC_LOAD, DC_NONE, DC_STORE,
                                   F_INV_ALU, F_INV_MONO, F_LOAD,
                                   F_PC_INFERABLE, F_PURE,
                                   KC_HALT, KC_SIMPLE, lower_program)
from repro.isa.opcodes import WORD_MASK
from repro.isa.semantics import alu_result
from repro.obs.stall import StallCause, attribute_cycle
from repro.pipeline.core import OoOCore, SimResult, SimulationError
from repro.pipeline.dyninst import DynInst
from repro.pipeline.engine_api import ProtectionEngine

def _seq_of(di):
    return di.seq


_RETIRING = int(StallCause.RETIRING)
_SQUASH_RECOVERY = int(StallCause.SQUASH_RECOVERY)
_FETCH_STARVED = int(StallCause.FETCH_STARVED)
_ROB_FULL = int(StallCause.ROB_FULL)
_RS_FULL = int(StallCause.RS_FULL)
_LSQ_FULL = int(StallCause.LSQ_FULL)


class VectorCore(OoOCore):
    """OoO core with the struct-of-arrays fast path (backend="vector")."""

    def __init__(self, program, engine=None, params=None, **kwargs):
        require_numpy()
        if engine is not None:
            engine = vectorize_engine(engine)
        super().__init__(program, engine=engine, params=params, **kwargs)
        # Batched-phase state.  ``_fast`` is decided once, at the first
        # ``run()`` call: direct ``step()`` driving, the sanitizer, and the
        # tracer's squash sink all keep the reference phases (and their
        # per-instruction DynInst materialisation) live.
        self._fast = False
        self._fast_decided = False
        self._table = None
        # Recycling pools, keyed by pc: a carcass is only ever reused as
        # the same static instruction, which lets the re-stamp skip every
        # field whose value is pc-determined or dead across same-pc lives
        # (DynInst.reinit_recycled documents the proof per field).
        self._pool: dict[int, list[DynInst]] = {}
        self._quar: list = []              # heap of (release_cycle, seq, di)
        # Squash victims with no still-scheduled completion-bucket entry
        # (``ready_cycle <= cycle``): they only need to stay visible as
        # ``squashed = True`` until the squash cycle's remaining observers
        # (this cycle's engine tick, the STL watch prune) have run, so they
        # cool in a plain list tagged with the squash cycle and re-pool in
        # one batch on the first later cycle — no heap traffic.
        self._cool: list[DynInst] = []
        self._cool_cycle = -1
        # Wakeup network: preg -> [(seq, di), ...] waiting on that register;
        # a min-heap of operand-ready candidates; and the seq-sorted list of
        # ready candidates the engine gated (or the width cut off) last
        # cycle.  All entries are revalidated by seq before use.
        self._rs_wait: dict[int, list] = {}
        self._rs_ready: list = []
        self._rs_gated: list = []
        self._rs_count = 0                 # reference len(self.rs) twin
        # Loads whose data arrived this cycle (writeback bucket pop), to be
        # finalised by _finish_loads without scanning the LSQ.
        self._fin_loads: list[DynInst] = []

    # ------------------------------------------------------------------ run
    def run(self, max_instructions: int = 1_000_000) -> SimResult:
        """Reference run loop plus fast-forwarding and batched phases."""
        if not self._fast_decided:
            self._fast_decided = True
            if (self.checker is None and self.squash_sink is None
                    and self.cycle == 0):
                self._fast = True
                self._table = lower_program(self.program)
                # The fast dispatch pops from the left; the reference's
                # ``pop(0)`` list is only kept for the reference phases.
                self.fetch_buffer = deque(self.fetch_buffer)
        if self._fast:
            return self._run_fast(max_instructions)
        budget = max_instructions
        last_progress_cycle = 0
        last_retired = 0
        quiet_before: tuple = ()
        trans_before = res_before = 0
        # Under the lockstep sanitizer every cycle must be stepped.
        jumping = self.checker is None
        engine = self.engine
        while not self.halted and self.retired_count < budget:
            if jumping:
                activity = self._activity
                quiet_before = engine.quiet_state()
                trans_before = self._transmitters_delayed
                res_before = self._resolutions_delayed
            self.step()
            if self.retired_count != last_retired:
                last_retired = self.retired_count
                last_progress_cycle = self.cycle
            elif self.cycle - last_progress_cycle > 100_000:
                raise SimulationError(
                    f"{self.engine.name}/{self.program.name}: no retirement "
                    f"for 100k cycles at cycle {self.cycle} "
                    f"(head={self.head_inst()!r})")
            if self.cycle >= self.params.max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded max_cycles")
            if (jumping and not self.halted
                    and self._activity == activity):
                self._quiet_jump(last_progress_cycle, quiet_before,
                                 trans_before, res_before)
                if self.cycle >= self.params.max_cycles:
                    raise SimulationError(
                        f"{self.program.name}: exceeded max_cycles")
        if self.checker is not None:
            self.checker.on_finish(self.halted)
        return SimResult(self, self.halted)

    def _run_fast(self, budget: int) -> SimResult:
        """The run loop with ``step()`` inlined (fast mode has no checker).

        Phase order, the retirement/deadlock/cycle-cap accounting and the
        quiescence detection replicate :meth:`OoOCore.step` plus the
        generic loop above statement for statement; the only change is
        mechanical (bound methods hoisted out of the loop).
        """
        engine = self.engine
        quiet_state = engine.quiet_state
        # Engines without per-cycle monotone counters inherit the base
        # quiet_state, a constant ``()`` — no point calling it every step.
        if type(engine).quiet_state is ProtectionEngine.quiet_state:
            quiet_state = None
        engine_tick = engine.tick
        writeback = self._writeback
        memory_stage = self._memory_stage
        resolve_control = self._resolve_control
        commit = self._commit
        issue = self._issue
        dispatch = self._dispatch
        fetch = self._fetch
        stall_counts = self.stall_counts
        max_cycles = self.params.max_cycles
        last_progress_cycle = 0
        quiet_before: tuple = ()
        while not self.halted and self.retired_count < budget:
            activity = self._activity
            if quiet_state is not None:
                quiet_before = quiet_state()
            trans_before = self._transmitters_delayed
            res_before = self._resolutions_delayed
            self.cycle += 1
            retired_before = self.retired_count
            writeback()
            memory_stage()
            resolve_control()
            commit()
            issue()
            dispatch()
            fetch()
            engine_tick()
            if self.retired_count != retired_before:
                stall_counts[_RETIRING] += 1
                last_progress_cycle = self.cycle
            else:
                stall_counts[attribute_cycle(self)] += 1
                if self.cycle - last_progress_cycle > 100_000:
                    raise SimulationError(
                        f"{engine.name}/{self.program.name}: no retirement "
                        f"for 100k cycles at cycle {self.cycle} "
                        f"(head={self.head_inst()!r})")
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded max_cycles")
            if not self.halted and self._activity == activity:
                self._quiet_jump(last_progress_cycle, quiet_before,
                                 trans_before, res_before)
                if self.cycle >= max_cycles:
                    raise SimulationError(
                        f"{self.program.name}: exceeded max_cycles")
        return SimResult(self, self.halted)

    # ---------------------------------------------------------- fast-forward
    def _next_event_cycle(self) -> Optional[int]:
        """First future cycle at which the quiescent machine can move."""
        candidates = []
        if self._completion_buckets:
            candidates.append(min(self._completion_buckets))
        if (not self.fetch_halted and self.fetch_wait_for is None
                and self.cycle < self.fetch_resume_cycle
                and len(self.fetch_buffer) < 4 * self.params.fetch_width):
            candidates.append(self.fetch_resume_cycle)
        if self.fetch_buffer:
            ready = self.fetch_buffer[0][0]
            if ready > self.cycle:
                candidates.append(ready)
        # A load stalled on exhausted MSHRs unblocks at the expiry that
        # first brings the busy count under the pool size.
        for di in self.lsq:
            if (di.is_load and di.addr_ready and not di.mem_issued
                    and not di.mem_complete and not di.squashed):
                busy = sorted(t for t in self.hierarchy._mshr_busy_until
                              if t > self.cycle)
                mshrs = self.hierarchy.params.mshrs
                if len(busy) >= mshrs:
                    candidates.append(busy[len(busy) - mshrs])
                break
        if not candidates:
            return None
        return min(candidates)

    def _quiet_jump(self, last_progress_cycle: int, quiet_before: tuple,
                    trans_before: int, res_before: int) -> None:
        """Jump time to just before the next event, accounting in batch."""
        cycle = self.cycle
        # Never jump past the deadlock detector or the cycle cap: landing
        # exactly on them reproduces the reference's raises byte-for-byte.
        horizon = last_progress_cycle + 100_000
        if self.params.max_cycles < horizon:
            horizon = self.params.max_cycles
        event = self._next_event_cycle()
        if event is None:
            land = horizon
        else:
            land = min(event - 1, horizon)
        skipped = land - cycle
        if skipped <= 0:
            return
        # Stall attribution: the skipped cycles repeat the detection
        # cycle's cause; only the empty-window case is cycle-dependent
        # (squash-recovery turns into fetch-starved at the refill boundary).
        if self.rob_head >= len(self.rob):
            recovery_end = (self.last_squash_cycle
                            + self.params.redirect_penalty
                            + self.params.frontend_delay)
            n_recovery = min(land, recovery_end) - cycle
            if n_recovery < 0:
                n_recovery = 0
            self.stall_counts[_SQUASH_RECOVERY] += n_recovery
            self.stall_counts[_FETCH_STARVED] += skipped - n_recovery
        else:
            self.stall_counts[int(attribute_cycle(self))] += skipped
        # Per-cycle monotone counters: replay the detection cycle's delta.
        delta = self._transmitters_delayed - trans_before
        if delta:
            self._transmitters_delayed += delta * skipped
        delta = self._resolutions_delayed - res_before
        if delta:
            self._resolutions_delayed += delta * skipped
        self.engine.on_quiet_cycles(skipped, quiet_before)
        self.cycle = land

    # ------------------------------------------------------- batched phases
    # Each override takes the reference path unless the fast mode was
    # enabled at run() time; the fast bodies replicate the reference
    # semantics statement for statement (deviations are commented at the
    # point of proof).

    def _writeback(self) -> None:
        if not self._fast:
            return super()._writeback()
        done = self._completion_buckets.pop(self.cycle, None)
        if not done:
            return
        cycle = self.cycle
        rename = self.rename
        value = rename.value
        ready = rename.ready
        wait = self._rs_wait
        heap = self._rs_ready
        fin = self._fin_loads
        for di in done:
            # A quarantined squash victim stays un-recycled until this pop
            # has happened, so the skip below always sees the squashed
            # incarnation that scheduled the entry.
            if di.squashed:
                continue
            # Lifecycle timestamps (complete_cycle etc.) are tracer-only
            # reads; fast mode never materialises them.
            self._activity += 1
            di.complete = True
            if di.is_load:
                fin.append(di)
            result = di.result
            if result is not None:
                prd = di.prd
                if prd >= 0:
                    value[prd] = result
                    ready[prd] = True
                    waiters = wait.pop(prd, None)
                    if waiters:
                        for wseq, wdi in waiters:
                            if wdi.seq == wseq:
                                n = wdi.fp_wait - 1
                                wdi.fp_wait = n
                                if n == 0:
                                    heappush(heap, (wseq, wdi))

    # ------------------------------------------------------------------ issue
    def _issue(self) -> None:
        if not self._fast:
            return super()._issue()
        heap = self._rs_ready
        gated = self._rs_gated
        if not heap and not gated:
            return
        width = self.params.issue_width
        may_compute_address = self.engine.may_compute_address
        aluc = self._table.aluc
        value = self.rename.value
        buckets = self._completion_buckets
        cycle = self.cycle
        issued = 0
        delayed = 0
        new_gated: list = []
        keep = new_gated.append
        gi = 0
        glen = len(gated)
        # Merge the gated list (seq-sorted) with the ready heap so
        # candidates are examined in program order — the reference scans
        # its RS list, which is dispatch order, which is seq order.
        while True:
            if gi < glen:
                if heap and heap[0][0] < gated[gi][0]:
                    entry = heappop(heap)
                else:
                    entry = gated[gi]
                    gi += 1
            elif heap:
                entry = heappop(heap)
            else:
                break
            seq, di = entry
            # Lazy purge: squashes (and pooled recycling) invalidate
            # entries in place instead of scanning these structures.
            if di.seq != seq or di.squashed or di.issued:
                continue
            if issued >= width:
                # Width exhausted: the reference appends the rest of the RS
                # untouched — in particular gated transmitters past this
                # point are not counted delayed and the engine is not
                # consulted.
                keep(entry)
                continue
            if di.is_transmitter and not (di.reached_vp
                                          or may_compute_address(di)):
                delayed += 1
                di.engine_delayed = True
                keep(entry)
                continue
            if aluc[di.pc]:
                # Inlined reference _execute, ALU arm only (compute and
                # schedule; issue_cycle is a tracer-only timestamp).
                self._activity += 1
                di.issued = True
                if di.engine_delayed:
                    di.engine_delayed = False
                info = di.info
                if info.reads_rs1:
                    di.rs1_value = value[di.prs1]
                if info.reads_rs2:
                    di.rs2_value = value[di.prs2]
                di.result = alu_result(di.inst, di.rs1_value or 0,
                                       di.rs2_value or 0)
                lat = info.latency
                rc = cycle + (lat if lat > 1 else 1)
                di.ready_cycle = rc
                b = buckets.get(rc)
                if b is None:
                    buckets[rc] = [di]
                else:
                    b.append(di)
            else:
                self._execute(di)
            self._rs_count -= 1
            issued += 1
        if delayed:
            self._transmitters_delayed += delayed
        self._rs_gated = new_gated

    # ------------------------------------------------------- load finalising
    def _finish_loads(self) -> None:
        if not self._fast:
            return super()._finish_loads()
        # Event-driven: every load completes through a writeback bucket pop
        # (the only site that sets ``complete`` on loads), which queued it
        # here — no LSQ scan.  Drained in seq order (the reference walks the
        # program-ordered LSQ; bucket order is schedule order) and
        # re-checked for squashes, which _memory_stage's memory-order
        # violation check can raise between writeback and this phase.
        pending = self._fin_loads
        if not pending:
            return
        self._fin_loads = []
        if len(pending) > 1:
            pending.sort(key=_seq_of)
        on_load_data = self.engine.on_load_data
        for di in pending:
            if di.squashed:
                continue
            di.mem_complete = True
            self._activity += 1
            on_load_data(di)

    # ----------------------------------------------------------------- commit
    def _commit(self) -> None:
        if self._fast:
            rob = self.rob
            head = self.rob_head
            # Universal early-out: an incomplete head can never retire
            # (HALT/NOP complete at dispatch; a load's ``mem_complete``
            # implies ``complete``; predicted control needs ``complete``
            # too), and retirement is strictly in order.  Retiring cycles
            # fall through to the reference body.
            if head >= len(rob) or not rob[head].complete:
                return
        super()._commit()

    # --------------------------------------------------------------- dispatch
    def _dispatch(self) -> None:
        if not self._fast:
            return super()._dispatch()
        self.dispatch_block = -1
        buf = self.fetch_buffer
        cycle = self.cycle
        if not buf or buf[0][0] > cycle:
            return
        params = self.params
        width = params.issue_width
        rob_entries = params.rob_entries
        rs_entries = params.rs_entries
        lq_entries = params.lq_entries
        sq_entries = params.sq_entries
        rename = self.rename
        rat = rename.rat
        free = rename.free
        ready = rename.ready
        value = rename.value
        engine = self.engine
        # The engine's rename hook is the per-dispatch hot call; for the
        # exact vector SPT engine its body is inlined below with the window
        # masks accumulated in locals for the whole dispatch group.  Any
        # other engine (baselines, STT, subclasses) keeps the call.
        vspt = engine if type(engine) is VectorSPTEngine else None
        if vspt is None:
            engine_on_rename = engine.on_rename
        else:
            taint = vspt.taint
            taint_since = vspt._taint_since
            pc_flags = vspt._pc_flags
            cap = vspt._cap
            slot_di = vspt._slot_di
            rows = vspt._preg_slots
            tail = vspt._tail
            t_src1_m = vspt._t_src1_m
            t_src2_m = vspt._t_src2_m
            t_dst_m = vspt._t_dst_m
            pure_m = vspt._pure_m
            inv_mono_m = vspt._inv_mono_m
            inv_alu_m = vspt._inv_alu_m
        rob = self.rob
        rob_head = self.rob_head
        table = self._table
        hasdest = table.hasdest
        dclass_t = table.dclass
        rs_wait = self._rs_wait
        heap = self._rs_ready
        lsq = self.lsq
        dispatched = 0
        while buf and dispatched < width and buf[0][0] <= cycle:
            di = buf[0][1]
            pc = di.pc
            dc = dclass_t[pc]
            if len(rob) - rob_head >= rob_entries:
                self.dispatch_block = _ROB_FULL
                break
            if not free and hasdest[pc]:
                self.dispatch_block = _ROB_FULL
                break
            if dc <= DC_STORE:                        # RS/LQ/SQ resources
                if self._rs_count >= rs_entries:
                    self.dispatch_block = _RS_FULL
                    break
                if dc == DC_LOAD and self._lq_used >= lq_entries:
                    self.dispatch_block = _LSQ_FULL
                    break
                if dc == DC_STORE and self._sq_used >= sq_entries:
                    self.dispatch_block = _LSQ_FULL
                    break
            buf.popleft()
            self._activity += 1
            # Inlined RenameUnit.rename: the free-list check above already
            # guaranteed a register when one is needed.  (dispatch_cycle is
            # a tracer-only timestamp; fast mode skips it.)
            inst = di.inst
            info = di.info
            # A pc that does not read/write a register leaves the recycled
            # carcass's field at -1 (no life at this pc ever set it), so the
            # locals mirror di.prs1/prs2/prd exactly.
            prs1 = prs2 = prd = -1
            if info.reads_rs1:
                di.prs1 = prs1 = rat[inst.rs1]
            if info.reads_rs2:
                di.prs2 = prs2 = rat[inst.rs2]
            if info.writes_rd and inst.rd != 0:
                prd = free.popleft()
                di.old_prd = rat[inst.rd]
                di.prd = prd
                rat[inst.rd] = prd
                ready[prd] = False
                value[prd] = 0
            if vspt is None:
                engine_on_rename(di)
            else:
                # Inlined VectorSPTEngine.on_rename — that method is the
                # specification (and the path every other call site takes);
                # the lockstep suite pins the two against each other.
                t1 = prs1 >= 0 and taint[prs1]
                t2 = prs2 >= 0 and taint[prs2]
                di.t_src1 = t1
                di.t_src2 = t2
                flags = pc_flags[pc]
                if flags & F_LOAD:
                    tainted = True
                elif flags & F_PC_INFERABLE:
                    tainted = False
                else:
                    tainted = t1 or t2
                di.t_dst = tainted
                if prd >= 0:
                    taint[prd] = tainted
                    if tainted:
                        taint_since[prd] = cycle
                    else:
                        taint_since.pop(prd, None)
                slot = tail
                tail = slot + 1 if slot + 1 < cap else 0
                di.fp_slot = slot
                slot_di[slot] = di
                bit = 1 << slot
                if flags & F_PURE:
                    pure_m |= bit
                if flags & F_INV_MONO:
                    inv_mono_m |= bit
                elif flags & F_INV_ALU:
                    inv_alu_m |= bit
                if t1:
                    t_src1_m |= bit
                if t2:
                    t_src2_m |= bit
                if tainted:
                    t_dst_m |= bit
                if prs1 >= 0:
                    rows[prs1] |= bit
                if prs2 >= 0 and prs2 != prs1:
                    rows[prs2] |= bit
                if prd >= 0:
                    rows[prd] |= bit
            rob.append(di)
            if dc <= DC_STORE:
                self._rs_count += 1
                seq = di.seq
                nwait = 0
                if prs1 >= 0 and not ready[prs1]:
                    w = rs_wait.get(prs1)
                    if w is None:
                        rs_wait[prs1] = [(seq, di)]
                    else:
                        w.append((seq, di))
                    nwait = 1
                if dc != DC_STORE:
                    # Stores split address (rs1) from data (rs2): address
                    # issue only needs rs1; data is captured in the LSQ.
                    if prs2 >= 0 and prs2 != prs1 and not ready[prs2]:
                        w = rs_wait.get(prs2)
                        if w is None:
                            rs_wait[prs2] = [(seq, di)]
                        else:
                            w.append((seq, di))
                        nwait += 1
                di.fp_wait = nwait
                if nwait == 0:
                    heappush(heap, (seq, di))
                if dc:                                # DC_LOAD / DC_STORE
                    lsq.append(di)
                    if dc == DC_STORE:
                        self._sq_used += 1
                    else:
                        self._lq_used += 1
            elif dc == DC_NONE:                       # HALT / NOP
                di.complete = True
            else:                                     # DC_JUMP: JAL
                result = (pc + 1) & WORD_MASK
                di.result = result
                di.actual_taken = True
                di.actual_target = inst.imm
                di.resolution_applied = True
                if prd >= 0:
                    # write_result on a just-allocated register: no live
                    # waiter can exist for it, so no wakeup scan is needed.
                    value[prd] = result
                    ready[prd] = True
                di.complete = True
            dispatched += 1
        if vspt is not None:
            vspt._tail = tail
            vspt._t_src1_m = t_src1_m
            vspt._t_src2_m = t_src2_m
            vspt._t_dst_m = t_dst_m
            vspt._pure_m = pure_m
            vspt._inv_mono_m = inv_mono_m
            vspt._inv_alu_m = inv_alu_m

    # ------------------------------------------------------------------ fetch
    def _fetch(self) -> None:
        if not self._fast:
            return super()._fetch()
        cycle = self.cycle
        cool = self._cool
        if cool and cycle > self._cool_cycle:
            pool = self._pool
            for d in cool:
                p = pool.get(d.pc)
                if p is None:
                    pool[d.pc] = [d]
                else:
                    p.append(d)
            cool.clear()
        quar = self._quar
        if quar and quar[0][0] <= cycle:
            pool = self._pool
            while quar and quar[0][0] <= cycle:
                d = heappop(quar)[2]
                p = pool.get(d.pc)
                if p is None:
                    pool[d.pc] = [d]
                else:
                    p.append(d)
        if (self.fetch_halted or self.fetch_wait_for is not None
                or cycle < self.fetch_resume_cycle):
            self._maybe_release_fetch_wait()
            return
        buf = self.fetch_buffer
        if len(buf) >= 4 * self.params.fetch_width:
            return
        table = self._table
        kindc = table.kindc
        runlen = table.runlen
        insts = table.insts
        infos = table.infos
        rtier = table.rtier
        prog_len = len(insts)
        pool_get = self._pool.get
        new = DynInst.__new__
        cls = DynInst
        append = buf.append
        checkpoints = self._bp_checkpoints
        predictor = self.predictor
        pc = self.fetch_pc
        seq = self.seq
        fetched = 0
        budget = self.params.fetch_width
        ready = cycle + self.params.frontend_delay
        while budget > 0:
            if pc < 0 or pc >= prog_len:
                # Off-program wrong-path fetch: implicit halt bubble.
                self.fetch_halted = True
                self._activity += 1
                break
            kc = kindc[pc]
            if kc == KC_SIMPLE:
                n = runlen[pc]
                if n > budget:
                    n = budget
                end = pc + n
                while pc < end:
                    p = pool_get(pc)
                    if p:
                        # Inlined DynInst.reinit_recycled (hot path): the
                        # same-pc slim re-stamp, tier 0/1 only (KC_SIMPLE
                        # has no branches).
                        di = p.pop()
                        di.seq = seq
                        di.issued = False
                        di.complete = False
                        di.ready_cycle = -1
                        di.retired = False
                        di.squashed = False
                        di.engine_delayed = False
                        di.resolution_delayed = False
                        di.reached_vp = False
                        if rtier[pc]:
                            di.declassified = False
                            di.addr_ready = False
                            di.mem_issued = False
                            di.mem_complete = False
                            di.forwarded_from = None
                            di.fwding_st = -1
                            di.stl_public = False
                    else:
                        di = new(cls)
                        di.reinit(seq, pc, insts[pc], infos[pc])
                    append((ready, di))
                    seq += 1
                    pc += 1
                budget -= n
                fetched += n
                continue
            inst = insts[pc]
            p = pool_get(pc)
            if p:
                di = p.pop()
                di.reinit_recycled(seq, rtier[pc])
            else:
                di = new(cls)
                di.reinit(seq, pc, inst, infos[pc])
            seq += 1
            fetched += 1
            if kc == KC_HALT:
                append((ready, di))
                self.fetch_halted = True
                break
            # Control flow: checkpoint the speculative predictor state (RAS,
            # gshare history) before the prediction mutates it; restored by
            # ``_squash_after`` if this instruction gets squashed.
            checkpoints.append((di.seq, predictor.speculative_state()))
            taken, target, snapshot = predictor.predict(pc, inst)
            di.predicted_taken = taken
            di.predicted_target = target
            di.history_snapshot = snapshot
            append((ready, di))
            if target is None:
                di.prediction_missing = True
                di.mispredicted = True
                self.fetch_wait_for = di
                break
            pc = target
            budget -= 1
        self.fetch_pc = pc
        self.seq = seq
        if fetched:
            self.n_fetched += fetched
            self._activity += fetched

    # ----------------------------------------------------------------- squash
    def _squash_after(self, di) -> None:
        if not self._fast:
            return super()._squash_after(di)
        self._activity += 1
        self.n_squashes += 1
        self.last_squash_cycle = self.cycle
        self.observer.squash(self.cycle, di.pc)
        checkpoints = self._bp_checkpoints
        restore = None
        target_seq = di.seq
        while checkpoints and checkpoints[-1][0] > target_seq:
            restore = checkpoints.pop()
        if restore is not None:
            self.predictor.restore_speculative_state(restore[1])
        rob = self.rob
        rob_head = self.rob_head
        squashed: list[DynInst] = []
        append = squashed.append
        while len(rob) > rob_head and rob[-1].seq > target_seq:
            victim = rob.pop()
            victim.squashed = True
            append(victim)
        self.n_squashed_insts += len(squashed)
        if squashed:
            # The reference filters by a dead-seq set; every squash filters
            # immediately, so no stale squashed entries linger and the
            # ``squashed`` flag is an equivalent membership test.  The RS
            # list stays empty in fast mode (only the sanitizer reads it);
            # its occupancy twin is adjusted below.
            if self.lsq:
                self.lsq = lsq = [d for d in self.lsq if not d.squashed]
                sq = 0
                for d in lsq:
                    if d.is_store:
                        sq += 1
                self._sq_used = sq
                self._lq_used = len(lsq) - sq
            if self.pending_control:
                self.pending_control = [d for d in self.pending_control
                                        if not d.squashed]
            # The engine sees victims before rename-undo recycles their
            # destination registers (it must drop pending taint broadcasts).
            self.engine.on_squash(squashed)
            sink = self.squash_sink
            if sink is not None:
                sink.extend(squashed)
            # Inlined RenameUnit.undo, youngest-first as popped.
            rename = self.rename
            rat = rename.rat
            appendleft = rename.free.appendleft
            ready = rename.ready
            needs_rs = self._table.needs_rs
            rs_lost = 0
            for victim in squashed:
                prd = victim.prd
                if prd >= 0:
                    rat[victim.inst.rd] = victim.old_prd
                    appendleft(prd)
                    ready[prd] = True
                    victim.prd = -1
                if not victim.issued and needs_rs[victim.pc]:
                    rs_lost += 1
            self._rs_count -= rs_lost
            if sink is None:
                # Park victims for pooled recycling: safe once the squash
                # cycle has passed (within-cycle references check the
                # ``squashed`` flag or a seq tag) and any still-scheduled
                # completion-bucket entry has been popped by writeback.
                # Victims with no future bucket entry take the cheap
                # cooldown list; only in-flight ones (``ready_cycle`` still
                # ahead) pay the release-ordering heap.
                cycle = self.cycle
                cool = self._cool
                if cool and cycle > self._cool_cycle:
                    pool = self._pool
                    for d in cool:
                        p = pool.get(d.pc)
                        if p is None:
                            pool[d.pc] = [d]
                        else:
                            p.append(d)
                    cool.clear()
                self._cool_cycle = cycle
                quar = self._quar
                for victim in squashed:
                    rc = victim.ready_cycle
                    if rc > cycle:
                        heappush(quar, (rc, victim.seq, victim))
                    else:
                        cool.append(victim)
        buf = self.fetch_buffer
        if buf:
            if self.squash_sink is None:
                # Cleared fetch-buffer entries were never renamed and are
                # referenced by nothing else: recycle them immediately.
                pool = self._pool
                for _, d in buf:
                    p = pool.get(d.pc)
                    if p is None:
                        pool[d.pc] = [d]
                    else:
                        p.append(d)
            buf.clear()
        self.fetch_wait_for = None
        self._vp_scan = min(self._vp_scan, len(rob))
