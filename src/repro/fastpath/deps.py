"""Optional numpy dependency gate for the vector backend.

The reference backend must keep working on an interpreter with no numpy
installed, so the import is attempted once here and every fastpath entry
point calls :func:`require_numpy` before touching it.  ``np`` is ``None``
when numpy is missing; tests monkeypatch it to simulate that.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:          # pragma: no cover - exercised via monkeypatch
    np = None

NUMPY_FLOOR = "1.22"


def have_numpy() -> bool:
    return np is not None


def require_numpy():
    """Return the numpy module or raise a actionable ImportError."""
    if np is None:
        raise ImportError(
            "backend='vector' requires numpy (>= {floor}), which is not "
            "installed.  Install it (pip install 'numpy>={floor}') or use "
            "backend='reference', which has no third-party dependencies."
            .format(floor=NUMPY_FLOOR))
    return np
