"""repro: a pure-Python reproduction of Speculative Privacy Tracking (SPT).

Public API tour:

* :mod:`repro.isa` — the ISA, assembler, program builder, and a golden
  functional interpreter.
* :mod:`repro.pipeline` — the out-of-order core with real transient execution.
* :mod:`repro.core` — the paper's contribution: the untaint algebra, attack
  models, and the STT / SPT / baseline protection engines.
* :mod:`repro.memory` — main memory and the L1/L2/L3/DRAM hierarchy.
* :mod:`repro.security` — the attacker observation model and attack gadgets.
* :mod:`repro.workloads` — SPEC-like kernels and constant-time crypto kernels.
* :mod:`repro.harness` — Table 2 configurations and the experiment runner.
* :mod:`repro.experiments` — regeneration of every paper table and figure.
"""

__version__ = "1.0.0"

from repro.core import AttackModel, SPTEngine, STTEngine
from repro.harness import CONFIGURATIONS, make_engine, run_one
from repro.isa import ProgramBuilder, assemble, run_program
from repro.pipeline import MachineParams, OoOCore

__all__ = [
    "AttackModel", "SPTEngine", "STTEngine", "CONFIGURATIONS", "make_engine",
    "run_one", "ProgramBuilder", "assemble", "run_program", "MachineParams",
    "OoOCore", "__version__",
]
