"""Figure 8: per-benchmark breakdown of untaint-event types.

Runs the full SPT design (SPT {Bwd, ShadowL1}) on every benchmark under both
attack models and reports the fraction of register-untaint events of each
exclusive kind (VP declassification, forward, backward, shadow-L1,
store-to-load forwarding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.attack_model import AttackModel
from repro.core.events import UntaintKind
from repro.harness.configs import FULL_SPT
from repro.harness.parallel import RunSpec, run_many
from repro.harness.report import format_table
from repro.harness.runner import bench_budget, bench_scale
from repro.workloads.registry import WORKLOADS

KIND_ORDER = [
    UntaintKind.VP_TRANSMITTER, UntaintKind.VP_BRANCH, UntaintKind.FORWARD,
    UntaintKind.BACKWARD, UntaintKind.SHADOW_L1, UntaintKind.STL_FORWARD,
    UntaintKind.STL_BACKWARD,
]


@dataclass
class Figure8Data:
    """(model, workload) -> {kind_name: count}."""

    counts: dict = field(default_factory=dict)
    workloads: list = field(default_factory=list)
    models: list = field(default_factory=list)

    def breakdown(self, model: AttackModel, workload: str) -> dict:
        """Fractions per kind (empty dict if no untaint events occurred)."""
        counts = self.counts[(model, workload)]
        total = sum(counts.values())
        if not total:
            return {}
        return {kind: counts.get(kind, 0) / total for kind in counts}


def collect(workloads: Optional[Sequence[str]] = None,
            models: Optional[Sequence[AttackModel]] = None,
            config: str = FULL_SPT,
            scale: Optional[int] = None,
            budget: Optional[int] = None,
            jobs: Optional[int] = None,
            use_cache: Optional[bool] = None) -> Figure8Data:
    workloads = list(workloads or WORKLOADS)
    models = list(models or (AttackModel.FUTURISTIC, AttackModel.SPECTRE))
    scale = scale or bench_scale()
    budget = budget or bench_budget()
    data = Figure8Data(workloads=workloads, models=models)
    specs = [RunSpec(workload, config, model, scale=scale,
                     max_instructions=budget)
             for model in models for workload in workloads]
    results = iter(run_many(specs, jobs=jobs, use_cache=use_cache))
    for model in models:
        for workload in workloads:
            data.counts[(model, workload)] = \
                dict(next(results).untaint_by_kind)
    return data


def render(data: Figure8Data) -> str:
    headers = (["benchmark", "model", "total"]
               + [kind.value for kind in KIND_ORDER])
    rows = []
    for workload in data.workloads:
        for model in data.models:
            counts = data.counts[(model, workload)]
            total = sum(counts.values())
            fractions = []
            for kind in KIND_ORDER:
                count = counts.get(kind.value, 0)
                fractions.append(f"{100 * count / total:5.1f}%" if total else "-")
            tag = "F" if model == AttackModel.FUTURISTIC else "S"
            rows.append([workload, tag, total] + fractions)
    return format_table(
        headers, rows,
        title="Figure 8: breakdown of untaint events, SPT {Bwd, ShadowL1} "
              "(F = Futuristic, S = Spectre)")


def main() -> str:
    text = render(collect())
    print(text)
    return text


if __name__ == "__main__":
    main()
