"""One module per table/figure of the paper's evaluation.

Import the submodules explicitly (``from repro.experiments import figure7``);
they are not imported eagerly so that ``python -m repro.experiments.figure7``
works without double-import warnings.
"""

__all__ = ["figure7", "figure8", "figure9", "table3"]
