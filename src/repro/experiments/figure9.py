"""Figure 9 + Section 9.4: choosing the untaint broadcast width.

Runs SPT {Ideal, ShadowMem} (unbounded single-cycle untainting) on the SPEC
benchmarks and, for every *untainting cycle* (a cycle in which at least one
register is untainted), records how many registers were untainted.  The
cumulative distribution justifies the hardware's broadcast width of 3: the
paper finds ~81% of untainting cycles untaint at most 3 registers.

``width_sweep`` is the companion ablation: actual execution time of the full
SPT design as the broadcast width varies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.attack_model import AttackModel
from repro.harness.configs import FULL_SPT
from repro.harness.parallel import RunSpec, run_many
from repro.harness.report import format_table, mean
from repro.harness.runner import bench_budget, bench_scale
from repro.pipeline.params import MachineParams
from repro.workloads.registry import spec_workloads

MAX_BUCKET = 10      # the paper plots N = 1..10+


@dataclass
class Figure9Data:
    """workload -> {registers_untainted: cycle_count}."""

    histograms: dict = field(default_factory=dict)
    workloads: list = field(default_factory=list)

    def cdf(self, workload: str) -> list:
        """P(registers untainted <= N) for N = 1..MAX_BUCKET."""
        histogram = self.histograms[workload]
        total = sum(histogram.values())
        if not total:
            return [1.0] * MAX_BUCKET
        cumulative = []
        running = 0
        for n in range(1, MAX_BUCKET + 1):
            running += histogram.get(n, 0)
            cumulative.append(running / total)
        # Everything above MAX_BUCKET folds into the last bucket implicitly.
        return cumulative

    def average_cdf(self) -> list:
        return [mean(self.cdf(w)[n] for w in self.workloads)
                for n in range(MAX_BUCKET)]


def collect(workloads: Optional[Sequence[str]] = None,
            model: AttackModel = AttackModel.FUTURISTIC,
            scale: Optional[int] = None,
            budget: Optional[int] = None,
            jobs: Optional[int] = None,
            use_cache: Optional[bool] = None) -> Figure9Data:
    workloads = list(workloads or [w.name for w in spec_workloads()])
    scale = scale or bench_scale()
    budget = budget or bench_budget()
    data = Figure9Data(workloads=workloads)
    specs = [RunSpec(workload, "SPT{Ideal,ShadowMem}", model, scale=scale,
                     max_instructions=budget)
             for workload in workloads]
    for workload, result in zip(workloads,
                                run_many(specs, jobs=jobs,
                                         use_cache=use_cache)):
        data.histograms[workload] = {
            n: c for n, c in result.untaints_per_cycle.items() if n > 0}
    return data


def render(data: Figure9Data) -> str:
    headers = ["benchmark"] + [f"<={n}" for n in range(1, MAX_BUCKET + 1)]
    rows = []
    for workload in data.workloads:
        rows.append([workload] + [f"{100 * p:5.1f}%" for p in data.cdf(workload)])
    rows.append(["average"] + [f"{100 * p:5.1f}%" for p in data.average_cdf()])
    return format_table(
        headers, rows,
        title="Figure 9: % of untainting cycles untainting <= N registers "
              "(SPT {Ideal, ShadowMem})")


def width_sweep(widths: Sequence[int] = (1, 2, 3, 4, 8),
                workloads: Optional[Sequence[str]] = None,
                model: AttackModel = AttackModel.FUTURISTIC,
                scale: Optional[int] = None,
                budget: Optional[int] = None,
                jobs: Optional[int] = None,
                use_cache: Optional[bool] = None) -> dict:
    """Section 9.4 ablation: cycles of full SPT vs. broadcast width."""
    workloads = list(workloads or
                     [w.name for w in spec_workloads()][:6])
    scale = scale or bench_scale()
    budget = budget or bench_budget()
    keys = [(width, workload) for width in widths for workload in workloads]
    specs = [RunSpec(workload, FULL_SPT, model, scale=scale,
                     max_instructions=budget,
                     params=MachineParams(untaint_broadcast_width=width))
             for width, workload in keys]
    results = run_many(specs, jobs=jobs, use_cache=use_cache)
    cycles = {key: result.cycles for key, result in zip(keys, results)}
    return {"cycles": cycles, "widths": list(widths), "workloads": workloads}


def render_width_sweep(sweep: dict) -> str:
    headers = ["benchmark"] + [f"width={w}" for w in sweep["widths"]]
    rows = []
    for workload in sweep["workloads"]:
        base = sweep["cycles"][(sweep["widths"][-1], workload)]
        rows.append([workload] + [sweep["cycles"][(w, workload)] / base
                                  for w in sweep["widths"]])
    return format_table(
        headers, rows,
        title="Section 9.4 ablation: SPT cycles vs. untaint broadcast width "
              "(normalised to the widest)")


def main() -> str:
    text = render(collect())
    text += "\n\n" + render_width_sweep(width_sweep())
    print(text)
    return text


if __name__ == "__main__":
    main()
