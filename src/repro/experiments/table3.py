"""Table 3: prior hardware mitigations compared along the paper's dimensions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.report import format_table


@dataclass(frozen=True)
class Scheme:
    name: str
    data_scope: str
    transmitter_scope: str
    receiver_scope: str
    transparent: str


SCHEMES = [
    Scheme("InvisiSpec", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
    Scheme("SafeSpec", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
    Scheme("DAWG", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
    Scheme("Delay-on-miss", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
    Scheme("Cond. Spec.", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
    Scheme("MuonTrap", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
    Scheme("CleanupSpec", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
    Scheme("CSF", "Spec/Non-spec accessed data", "Cache-based", "CC, ST",
           "no, user annotates secrets"),
    Scheme("MI6", "Spec/Non-spec accessed data", "All", "CC, ST", "yes"),
    Scheme("ConTExT", "Spec/Non-spec accessed data", "All", "CC, ST, SMT",
           "no, user annotates secrets"),
    Scheme("OISA", "Spec/Non-spec accessed data", "All", "CC, ST, SMT",
           "no, user annotates secrets"),
    Scheme("STT", "Spec accessed data", "All", "CC, ST, SMT", "yes"),
    Scheme("SDO", "Spec accessed data", "All", "CC, ST, SMT", "yes"),
    Scheme("SpecShield", "Spec accessed data", "All", "CC, ST, SMT", "yes"),
    Scheme("NDA", "Spec/Non-spec accessed data", "All", "CC, ST, SMT", "yes"),
    Scheme("Dolma", "Spec/Non-spec accessed data", "All", "CC, ST", "yes"),
    Scheme("SPT (this work)", "Non-spec secrets", "All", "CC, ST, SMT", "yes"),
]


def render() -> str:
    headers = ["Scheme", "Data protection scope", "Transmitter scope",
               "Receiver scope", "Programmer transparent?"]
    rows = [[s.name, s.data_scope, s.transmitter_scope, s.receiver_scope,
             s.transparent] for s in SCHEMES]
    return format_table(headers, rows,
                        title="Table 3: prior hardware-based mitigations")


def main() -> str:
    text = render()
    print(text)
    return text


if __name__ == "__main__":
    main()
