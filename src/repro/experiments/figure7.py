"""Figure 7 + Section 9.2 headline numbers: normalised execution time.

Runs every Table 2 configuration on every benchmark under both attack models
and reports execution time normalised to UnsafeBaseline, the per-category
averages, and the paper's headline ratios (SPT overhead vs. UnsafeBaseline,
overhead reduction vs. SecureBaseline, and the constant-time-kernel
comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.attack_model import AttackModel
from repro.harness.configs import FIGURE7_ORDER, FULL_SPT
from repro.harness.parallel import RunSpec, run_many
from repro.harness.report import format_table, geomean, mean
from repro.harness.runner import RunResult, bench_budget, bench_scale
from repro.workloads.registry import WORKLOADS, ct_workloads, spec_workloads


@dataclass
class Figure7Data:
    """Normalised execution times: (model, workload, config) -> float."""

    times: dict = field(default_factory=dict)
    workloads: list = field(default_factory=list)
    configs: list = field(default_factory=list)
    models: list = field(default_factory=list)

    def normalized(self, model: AttackModel, workload: str, config: str) -> float:
        return self.times[(model, workload, config)]

    def average_overhead(self, model: AttackModel, config: str,
                         workloads: Optional[Sequence[str]] = None) -> float:
        """Mean overhead (normalised time - 1) over a workload subset."""
        names = workloads or self.workloads
        return mean(self.normalized(model, w, config) - 1.0 for w in names)

    def mean_normalized(self, model: AttackModel, config: str,
                        workloads: Optional[Sequence[str]] = None) -> float:
        names = workloads or self.workloads
        return geomean([self.normalized(model, w, config) for w in names])


def specs(workloads: Sequence[str], configs: Sequence[str],
          models: Sequence[AttackModel], scale: int,
          budget: Optional[int]) -> list:
    """The Figure 7 sweep as a flat spec list: baseline first per cell."""
    out = []
    for model in models:
        for workload in workloads:
            out.append(RunSpec(workload, "UnsafeBaseline", model,
                               scale=scale, max_instructions=budget))
            for config in configs:
                out.append(RunSpec(workload, config, model,
                                   scale=scale, max_instructions=budget))
    return out


def collect(workloads: Optional[Sequence[str]] = None,
            configs: Optional[Sequence[str]] = None,
            models: Optional[Sequence[AttackModel]] = None,
            scale: Optional[int] = None,
            budget: Optional[int] = None,
            jobs: Optional[int] = None,
            use_cache: Optional[bool] = None) -> Figure7Data:
    """Run the Figure 7 sweep and return normalised execution times."""
    workloads = list(workloads or WORKLOADS)
    configs = list(configs or FIGURE7_ORDER)
    models = list(models or (AttackModel.FUTURISTIC, AttackModel.SPECTRE))
    scale = scale or bench_scale()
    budget = budget or bench_budget()
    data = Figure7Data(workloads=workloads, configs=configs, models=models)
    results = iter(run_many(specs(workloads, configs, models, scale, budget),
                            jobs=jobs, use_cache=use_cache))
    for model in models:
        for workload in workloads:
            baseline = next(results)
            for config in configs:
                data.times[(model, workload, config)] = \
                    _normalized(next(results), baseline)
    return data


def _normalized(result: RunResult, baseline: RunResult) -> float:
    if baseline.retired == result.retired:
        return result.cycles / baseline.cycles
    per_inst = result.cycles / max(1, result.retired)
    base_per_inst = baseline.cycles / max(1, baseline.retired)
    return per_inst / base_per_inst


def render(data: Figure7Data) -> str:
    """Render the two Figure 7 panels as ASCII tables."""
    sections = []
    for model in data.models:
        headers = ["benchmark"] + data.configs + ["(avg row)"]
        rows = []
        for workload in data.workloads:
            values = [data.normalized(model, workload, c) for c in data.configs]
            rows.append([workload] + values + [mean(values)])
        averages = ["average"] + [
            data.mean_normalized(model, c) for c in data.configs] + [""]
        rows.append(averages)
        sections.append(format_table(
            headers, rows,
            title=f"Figure 7 ({model.value} model): execution time "
                  f"normalised to UnsafeBaseline"))
    return "\n\n".join(sections)


def headline(data: Figure7Data) -> dict:
    """The Section 9.2 headline numbers, computed from the sweep."""
    ct_names = [w.name for w in ct_workloads() if w.name in data.workloads]
    spec_names = [w.name for w in spec_workloads() if w.name in data.workloads]
    out: dict = {}
    for model in data.models:
        key = model.value
        spt = data.mean_normalized(model, FULL_SPT) - 1.0
        secure = data.mean_normalized(model, "SecureBaseline") - 1.0
        out[f"spt_overhead_{key}"] = spt
        out[f"secure_overhead_{key}"] = secure
        out[f"overhead_reduction_{key}"] = secure / spt if spt > 0 else float("inf")
        if "STT" in data.configs:
            stt = data.mean_normalized(model, "STT") - 1.0
            out[f"stt_overhead_{key}"] = stt
            out[f"spt_extra_over_stt_pp_{key}"] = (spt - stt) * 100
        if ct_names:
            ct_secure = data.mean_normalized(model, "SecureBaseline", ct_names)
            ct_spt = data.mean_normalized(model, FULL_SPT, ct_names)
            out[f"ct_secure_slowdown_{key}"] = ct_secure
            out[f"ct_spt_slowdown_{key}"] = ct_spt
        if spec_names:
            out[f"spec_spt_overhead_{key}"] = \
                data.mean_normalized(model, FULL_SPT, spec_names) - 1.0
    return out


def render_headline(numbers: dict) -> str:
    lines = ["Section 9.2 headline numbers (paper values in parentheses):"]
    paper = {
        "spt_overhead_futuristic": "0.45",
        "spt_overhead_spectre": "0.11",
        "overhead_reduction_futuristic": "3.6x",
        "overhead_reduction_spectre": "3.0x",
        "ct_secure_slowdown_futuristic": "2.8x",
        "ct_spt_slowdown_futuristic": "1.10x",
        "spt_extra_over_stt_pp_futuristic": "26.1pp",
        "spt_extra_over_stt_pp_spectre": "3.3pp",
    }
    for key, value in sorted(numbers.items()):
        reference = f"   (paper: {paper[key]})" if key in paper else ""
        lines.append(f"  {key:38s} = {value:7.3f}{reference}")
    return "\n".join(lines)


def main() -> str:
    data = collect()
    text = render(data) + "\n\n" + render_headline(headline(data))
    print(text)
    return text


if __name__ == "__main__":
    main()
